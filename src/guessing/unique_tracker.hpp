// Distinct-guess accounting behind the attack engine's `unique` metric
// (Table III's "Unique" column).
//
// The seed harness hard-coded an unordered_set; the tracker interface makes
// the memory/accuracy trade-off a session-level choice:
//
//   - kOff:    no tracking, unique reports 0 (seed track_unique=false).
//   - kExact:  every distinct guess is stored (util::FlatStringSet, an
//              arena-backed open-addressing set that inserts several times
//              faster than unordered_set at the 10^7+ scale). Optionally
//              sharded so one chunk's inserts spread across the pool.
//   - kSketch: HyperLogLog estimate (util::CardinalitySketch), constant
//              memory (16 KiB at the default precision, ~0.8% error) for
//              the 10^8–10^9 regime where the exact set cannot fit.
//
// Counts from exact trackers are identical for any shard count and any
// insert order within a chunk sequence, which is what lets the pipelined
// session report bitwise-identical metrics to a serial run.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "util/thread_pool.hpp"

namespace passflow::util {
class CardinalitySketch;
}  // namespace passflow::util

namespace passflow::guessing {

enum class UniqueTracking {
  kOff,
  kExact,
  kSketch,
};

const char* unique_tracking_name(UniqueTracking mode);

class UniqueTracker {
 public:
  virtual ~UniqueTracker() = default;

  // Folds a whole chunk of guesses into the tracker. `pool` may be used
  // for shard-parallel inserts; the resulting count must not depend on it.
  // Not safe for concurrent calls — the session serializes chunk order.
  virtual void add_batch(const std::vector<std::string>& batch,
                         util::ThreadPool* pool) = 0;

  // Distinct guesses so far (an estimate for sketch trackers).
  virtual std::size_t count() const = 0;

  virtual bool exact() const = 0;
  virtual UniqueTracking mode() const = 0;
  virtual std::size_t memory_bytes() const = 0;

  // Folds this tracker's distinct-guess state into `sketch`, the fleet-wide
  // union accumulator of the multi-scenario scheduler: sketch trackers
  // merge registers (register-wise max; throws std::invalid_argument on a
  // precision mismatch), exact trackers re-add every stored key. Every
  // tracker hashes with util::hash64, so exact and sketch contributions
  // compose into one coherent union estimate. Returns false — leaving
  // `sketch` untouched — when there is nothing to contribute (kOff).
  virtual bool merge_into(util::CardinalitySketch& sketch) const = 0;

  // State serialization for session save/resume.
  virtual void save(std::ostream& out) const = 0;
  virtual void load(std::istream& in) = 0;
};

// `exact_shards` (>= 1) spreads the exact set — and, when a pool is
// present, each chunk's inserts — across independent sub-sets; counts are
// identical for any shard count. `sketch_precision_bits`: see
// util::CardinalitySketch.
std::unique_ptr<UniqueTracker> make_unique_tracker(
    UniqueTracking mode, std::size_t exact_shards = 1,
    unsigned sketch_precision_bits = 14);

}  // namespace passflow::guessing
