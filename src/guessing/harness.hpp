// Guessing-run harness: drives any GuessGenerator against a Matcher and
// records the metrics the paper's tables report (matched %, unique count,
// non-matched samples) at power-of-ten checkpoints.
#pragma once

#include "guessing/generator.hpp"
#include "guessing/matcher.hpp"
#include "guessing/metrics.hpp"
#include "util/thread_pool.hpp"

namespace passflow::guessing {

struct HarnessConfig {
  std::size_t budget = 100000;        // total guesses to generate
  std::vector<std::size_t> checkpoints;  // empty => powers of ten
  std::size_t chunk_size = 16384;     // guesses per generate() call
  std::size_t non_matched_samples = 40;  // reservoir for Table IV
  bool track_unique = true;           // disable to save memory on huge runs
  bool log_progress = false;
  // Non-owning worker pool. When set, matcher.contains() for a chunk is
  // precomputed across workers before the (order-sensitive) bookkeeping
  // runs serially, so every metric is identical to a serial run.
  util::ThreadPool* pool = nullptr;
  // Producer/consumer mode: generate chunk k+1 on a background thread
  // while chunk k is being matched. Only engages for generators whose
  // uses_match_feedback() is false (for others, matching chunk k must
  // complete — including on_match callbacks — before chunk k+1 may be
  // generated, so the harness silently stays sequential). Because the
  // chunk schedule and the generate() call order are unchanged, metrics
  // are bitwise identical to a serial run.
  bool overlap_generation = false;
};

// Runs the full loop: generate -> match -> feed matches back -> checkpoint.
// A "match" is counted once per distinct test-set password (re-guessing an
// already matched password does not count again), mirroring |P| in
// Algorithm 1. Note: when overlap_generation engages, on_match() is not
// invoked at all — the generator has declared it ignores feedback, and the
// calls would otherwise race with the background generate().
RunResult run_guessing(GuessGenerator& generator, const Matcher& matcher,
                       HarnessConfig config);

}  // namespace passflow::guessing
