// Compatibility wrapper over the AttackSession engine (session.hpp).
//
// run_guessing() is the original one-shot evaluation entry point: drive any
// GuessGenerator against a Matcher and record the metrics the paper's
// tables report (matched %, unique count, non-matched samples) at
// power-of-ten checkpoints. It now constructs an AttackSession under the
// hood and produces bitwise-identical metrics to the historical loop; new
// code that wants incremental progress, deeper pipelining, sharded
// matching, sketch-based unique tracking or save/resume should use
// AttackSession directly.
#pragma once

#include <cstddef>
#include <vector>

#include "guessing/generator.hpp"
#include "guessing/matcher.hpp"
#include "guessing/metrics.hpp"
#include "guessing/session.hpp"
#include "util/thread_pool.hpp"

namespace passflow::guessing {

struct HarnessConfig {
  std::size_t budget = 100000;        // total guesses to generate
  std::vector<std::size_t> checkpoints;  // empty => powers of ten
  std::size_t chunk_size = 16384;     // guesses per generate() call
  std::size_t non_matched_samples = 40;  // reservoir for Table IV
  bool track_unique = true;           // disable to save memory on huge runs
  bool log_progress = false;
  // Non-owning worker pool for bulk matching (and tracker shards).
  util::ThreadPool* pool = nullptr;
  // Producer/consumer mode: generate chunk k+1 on a background thread
  // while chunk k is being matched (SessionConfig::pipeline_depth = 1).
  // Only engages for generators whose uses_match_feedback() is false; for
  // others the run silently stays sequential, and metrics are bitwise
  // identical either way. Note: when the overlap engages, on_match() is
  // not invoked at all — the generator has declared it ignores feedback,
  // and the calls would otherwise race with the background generate().
  bool overlap_generation = false;
};

// Runs the full loop: generate -> match -> feed matches back -> checkpoint.
// A "match" is counted once per distinct test-set password (re-guessing an
// already matched password does not count again), mirroring |P| in
// Algorithm 1.
RunResult run_guessing(GuessGenerator& generator, const Matcher& matcher,
                       HarnessConfig config);

}  // namespace passflow::guessing
