// Guessing-run harness: drives any GuessGenerator against a Matcher and
// records the metrics the paper's tables report (matched %, unique count,
// non-matched samples) at power-of-ten checkpoints.
#pragma once

#include "guessing/generator.hpp"
#include "guessing/matcher.hpp"
#include "guessing/metrics.hpp"

namespace passflow::guessing {

struct HarnessConfig {
  std::size_t budget = 100000;        // total guesses to generate
  std::vector<std::size_t> checkpoints;  // empty => powers of ten
  std::size_t chunk_size = 16384;     // guesses per generate() call
  std::size_t non_matched_samples = 40;  // reservoir for Table IV
  bool track_unique = true;           // disable to save memory on huge runs
  bool log_progress = false;
};

// Runs the full loop: generate -> match -> feed matches back -> checkpoint.
// A "match" is counted once per distinct test-set password (re-guessing an
// already matched password does not count again), mirroring |P| in
// Algorithm 1.
RunResult run_guessing(GuessGenerator& generator, const Matcher& matcher,
                       HarnessConfig config);

}  // namespace passflow::guessing
