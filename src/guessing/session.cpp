#include "guessing/session.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <istream>
#include <memory>
#include <ostream>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_set>
#include <utility>
#include <vector>

#include "util/logging.hpp"
#include "util/serial_io.hpp"

namespace passflow::guessing {

namespace {

constexpr char kMagic[] = "PFSESS1\n";
constexpr char kEndMagic[] = "PFSESSE\n";

namespace io = util::io;

}  // namespace

using util::MutexLock;
using util::ReleasableMutexLock;

AttackSession::AttackSession(GuessGenerator& generator, MatcherRef matcher,
                             SessionConfig config)
    : generator_(&generator),
      matcher_(std::move(matcher)),
      config_(std::move(config)) {
  if (config_.chunk_size == 0) {
    throw std::invalid_argument("SessionConfig::chunk_size must be > 0");
  }
  // Feedback-driven generators (Algorithm 1) must see each chunk's matches
  // before producing the next chunk, so generation cannot run ahead.
  pipelined_ =
      config_.pipeline_depth > 0 && !generator_->uses_match_feedback();
  tracker_ = make_unique_tracker(config_.unique_tracking,
                                 config_.unique_shards,
                                 config_.sketch_precision_bits);
  tracker_stage_ = pipelined_ && config_.unique_tracking != UniqueTracking::kOff;
  // name() is not covered by the uses_match_feedback() contract, so it is
  // captured before any background generate() could race with it.
  generator_name_ = config_.log_progress ? generator_->name() : "";
  plan_schedule();
  refresh_stats();
}

AttackSession::~AttackSession() {
  try {
    pause_pipeline();
  } catch (...) {
    // Destructor must not throw; a pipeline error on teardown is dropped.
  }
}

void AttackSession::plan_schedule() {
  if (config_.checkpoints.empty()) {
    config_.checkpoints = power_of_ten_checkpoints(config_.budget);
  }
  std::sort(config_.checkpoints.begin(), config_.checkpoints.end());

  // Chunk request sizes are a pure function of budget/checkpoints/
  // chunk_size (generate() appends exactly n), so the whole schedule is
  // fixed up front: chunks never cross a checkpoint, and the pipelined
  // producer issues exactly the serial generate() call sequence.
  std::size_t planned = 0;
  std::size_t ci = 0;
  while (planned < config_.budget) {
    const std::size_t next_stop = ci < config_.checkpoints.size()
                                      ? config_.checkpoints[ci]
                                      : config_.budget;
    const std::size_t chunk =
        std::min(config_.chunk_size, next_stop - planned);
    schedule_.push_back(chunk);
    planned += chunk;
    while (ci < config_.checkpoints.size() &&
           planned >= config_.checkpoints[ci]) {
      ++ci;
    }
  }
}

void AttackSession::check_usable() const {
  if (load_failed_) {
    throw std::logic_error(
        "AttackSession is unusable: a previous load_state failed partway, "
        "so its state is incomplete");
  }
}

bool AttackSession::step() {
  check_usable();
  if (finished()) {
    refresh_stats();
    return false;
  }
  if (!timer_started_) {
    timer_.reset();
    timer_started_ = true;
  }
  if (pipelined_) {
    if (!pipeline_running_) start_pipeline();
    pipelined_step();
  } else {
    serial_step();
  }
  if (finished() && pipeline_running_) {
    // Natural end of the run: join the stage threads and sync the tracker
    // so result() reports the exact final unique count.
    pause_pipeline();
  }
  refresh_stats();
  return true;
}

const SessionStats& AttackSession::run_until(std::size_t guess_target) {
  const std::size_t target = std::min(guess_target, config_.budget);
  while (produced_ < target && step()) {
  }
  return stats_;
}

const SessionStats& AttackSession::run() { return run_until(config_.budget); }

void AttackSession::serial_step() {
  std::shared_ptr<Chunk> chunk;
  {
    // Serial mode has no stage threads, so the lock is uncontended; taken
    // so pending_ accesses stay inside the annotated protocol.
    MutexLock lock(mu_);
    if (!pending_.empty()) {
      chunk = std::move(pending_.front());
      pending_.pop_front();
    }
  }
  if (chunk != nullptr) {
    // Chunk thawed from a saved pipelined run: the generator's stream is
    // already past it, and feedback delivery was waived when it was
    // produced.
    if (!chunk->has_membership) {
      matcher_->contains_batch(chunk->batch, config_.pool,
                               chunk->membership);
    }
    tracker_->add_batch(chunk->batch, config_.pool);
    consume_chunk(chunk->batch, chunk->membership,
                  /*deliver_feedback=*/false);
  } else {
    batch_.clear();
    generator_->generate(schedule_[next_chunk_], batch_);
    matcher_->contains_batch(batch_, config_.pool, membership_);
    tracker_->add_batch(batch_, config_.pool);
    consume_chunk(batch_, membership_, /*deliver_feedback=*/true);
  }
  ++next_chunk_;
  emit_due_checkpoints();
}

void AttackSession::pipelined_step() {
  // A pipeline error can abort the previous step between consuming a chunk
  // and emitting its checkpoint. Emit anything due *before* consuming the
  // next chunk, so the retried checkpoint still reads the tracker at its
  // own boundary (the restarted drain re-folds the backlog first).
  emit_due_checkpoints();
  std::shared_ptr<Chunk> chunk;
  {
    ReleasableMutexLock lock(mu_);
    while (!pipeline_error_ && ready_.empty()) cv_.wait(lock);
    if (pipeline_error_) {
      lock.unlock();
      pause_pipeline();  // joins threads and rethrows the stored error
      return;            // not reached
    }
    chunk = std::move(ready_.front());
    ready_.pop_front();
    ++consumed_chunks_;  // frees a producer slot while we consume
  }
  cv_.notify_all();

  if (!chunk->has_membership) {
    // Thawed chunks are stored without membership; the matcher is
    // identical, so recomputing preserves every metric.
    matcher_->contains_batch(chunk->batch, config_.pool, chunk->membership);
    chunk->has_membership = true;
  }
  consume_chunk(chunk->batch, chunk->membership, /*deliver_feedback=*/false);
  ++next_chunk_;

  if (tracker_stage_) {
    schedule_tracker_chunk(std::move(chunk));
  } else {
    tracker_->add_batch(chunk->batch, config_.pool);
  }
  emit_due_checkpoints();
}

void AttackSession::schedule_tracker_chunk(std::shared_ptr<Chunk> chunk) {
  bool spawn_drain = false;
  {
    MutexLock lock(mu_);
    tracking_.push_back(std::move(chunk));
    if (tracker_on_pool_ && !tracker_task_active_) {
      tracker_task_active_ = true;
      spawn_drain = true;
    }
  }
  cv_.notify_all();
  if (spawn_drain) {
    // Serial executor on the shared pool: at most one drain task in
    // flight, so chunks fold in consumption order without a dedicated
    // thread. Overwriting the previous (completed) drain's future is safe
    // — a new drain only spawns after the old one flipped
    // tracker_task_active_ off in its final locked section, and only
    // pause_pipeline's wait needs the latest one.
    tracker_future_ = config_.pool->submit([this] { tracker_drain(); });
  }
}

void AttackSession::tracker_drain() {
  for (;;) {
    std::shared_ptr<Chunk> chunk;
    {
      MutexLock lock(mu_);
      if (tracking_.empty() || pipeline_error_) {
        // Final touch of session state: after this unlock the only thing
        // left is returning, which readies the future pause_pipeline
        // waits on. No cv notify here — nothing waits on idleness.
        tracker_task_active_ = false;
        return;
      }
      chunk = std::move(tracking_.front());
      tracking_.pop_front();
    }
    try {
      tracker_->add_batch(chunk->batch, config_.pool);
    } catch (...) {
      // Notify while still holding the lock: once it is released a
      // successor drain can be spawned and pause_pipeline can wait on
      // *that* future, so nothing may touch session state afterwards —
      // including this cv. (Waking a consumer parked on a checkpoint
      // sync is why the notify exists at all.)
      MutexLock lock(mu_);
      // Requeue at the front: the chunk was consumed, so its guesses are
      // owed to the tracker — a restarted pipeline re-folds it (folds are
      // set unions, so order does not matter) instead of losing it.
      tracking_.push_front(std::move(chunk));
      pipeline_error_ = std::current_exception();
      tracker_task_active_ = false;
      cv_.notify_all();
      return;
    }
    {
      MutexLock lock(mu_);
      ++tracked_chunks_;
      published_unique_ = tracker_->count();
    }
    cv_.notify_all();
  }
}

void AttackSession::consume_chunk(const std::vector<std::string>& batch,
                                  const std::vector<char>& membership,
                                  bool deliver_feedback) {
  // A "match" is counted once per distinct test-set password (re-guessing
  // an already matched password does not count again), mirroring |P| in
  // Algorithm 1.
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const std::string& guess = batch[i];
    if (membership[i] != 0) {
      if (matched_set_.insert(guess).second) {
        result_.matched_passwords.push_back(guess);
        // In pipelined mode the generator may be producing a later chunk
        // on the producer thread right now; it declared feedback unused,
        // so the callback is skipped rather than raced.
        if (deliver_feedback) generator_->on_match(i, guess);
      }
    } else if (result_.sample_non_matched.size() <
                   config_.non_matched_samples &&
               !guess.empty() && non_matched_seen_.insert(guess).second) {
      result_.sample_non_matched.push_back(guess);
    }
  }
  produced_ += batch.size();
}

Checkpoint AttackSession::make_checkpoint(std::size_t guesses,
                                          std::size_t unique) const {
  Checkpoint cp;
  cp.guesses = guesses;
  cp.unique = unique;
  cp.matched = matched_set_.size();
  cp.matched_percent =
      matcher_->test_set_size() > 0
          ? 100.0 * static_cast<double>(cp.matched) /
                static_cast<double>(matcher_->test_set_size())
          : 0.0;
  return cp;
}

void AttackSession::emit_due_checkpoints() {
  while (checkpoint_index_ < config_.checkpoints.size() &&
         produced_ >= config_.checkpoints[checkpoint_index_]) {
    const Checkpoint cp = make_checkpoint(
        config_.checkpoints[checkpoint_index_], synced_unique_count());
    result_.checkpoints.push_back(cp);
    ++checkpoint_index_;
    if (config_.log_progress) {
      PF_LOG_INFO << generator_name_ << ": " << cp.guesses << " guesses, "
                  << cp.matched << " matched (" << cp.matched_percent
                  << "%), " << cp.unique << " unique";
    }
  }
}

std::size_t AttackSession::synced_unique_count() {
  if (pipeline_running_ && tracker_stage_) {
    // Checkpoints report the unique count at an exact chunk boundary, so
    // the consumer parks until the tracker stage has folded every chunk
    // consumed so far (it can never be ahead — it is fed by the consumer).
    ReleasableMutexLock lock(mu_);
    while (!pipeline_error_ &&
           !(tracking_.empty() && tracked_chunks_ == consumed_chunks_)) {
      cv_.wait(lock);
    }
    if (pipeline_error_) {
      lock.unlock();
      pause_pipeline();
      return 0;  // not reached
    }
  }
  last_synced_unique_ = tracker_->count();
  return last_synced_unique_;
}

void AttackSession::refresh_stats() {
  stats_.produced = produced_;
  stats_.matched = matched_set_.size();
  if (pipeline_running_ && tracker_stage_) {
    MutexLock lock(mu_);
    stats_.unique = std::max(published_unique_, last_synced_unique_);
  } else {
    stats_.unique = tracker_->count();
  }
  stats_.checkpoints_emitted = result_.checkpoints.size();
  stats_.seconds =
      seconds_accum_ + (timer_started_ ? timer_.elapsed_seconds() : 0.0);
  stats_.guesses_per_second =
      stats_.seconds > 0.0
          ? static_cast<double>(produced_) / stats_.seconds
          : 0.0;
  stats_.finished = finished();
}

RunResult AttackSession::result() const {
  check_usable();
  RunResult out = result_;
  if (out.checkpoints.empty() || out.checkpoints.back().guesses != produced_) {
    const std::size_t unique =
        pipeline_running_ ? last_synced_unique_ : tracker_->count();
    out.checkpoints.push_back(make_checkpoint(produced_, unique));
  }
  out.seconds =
      seconds_accum_ + (timer_started_ ? timer_.elapsed_seconds() : 0.0);
  return out;
}

// ---- pipeline ------------------------------------------------------------

void AttackSession::start_pipeline() {
  bool spawn_drain = false;
  {
    // No stage threads exist yet, but the state below is mu_-guarded once
    // they do — initialize it under the lock so the happens-before edge to
    // the spawned threads is the same one the protocol relies on.
    MutexLock lock(mu_);
    producer_stop_ = false;
    tracker_stop_ = false;
    pipeline_error_ = nullptr;
    consumed_chunks_ = next_chunk_;
    // A pipeline torn down by an error (pause_pipeline after a throwing
    // tracker fold) can leave consumed-but-unfolded chunks in `tracking_`.
    // The restarted tracker stage will fold them and bump tracked_chunks_
    // once each, so the counter must start short by exactly that backlog —
    // seeding it at next_chunk_ would leave tracked_chunks_ permanently
    // ahead of consumed_chunks_ and wedge every checkpoint sync barrier.
    tracked_chunks_ = next_chunk_ - tracking_.size();
    generated_chunks_ = next_chunk_ + pending_.size();
    // Thawed chunks re-enter at the head of the ready queue; the producer
    // resumes generating after them (the generator's stream is already
    // positioned past them).
    ready_ = std::move(pending_);
    pending_.clear();
    published_unique_ = last_synced_unique_;
    tracker_on_pool_ = tracker_stage_ && config_.pool != nullptr;
    // Re-drain the error backlog now: if the run is already at its last
    // chunk, no schedule_tracker_chunk() will ever come along to spawn the
    // drain, and the sync barrier would wait on `tracking_` forever.
    tracker_task_active_ = tracker_on_pool_ && !tracking_.empty();
    spawn_drain = tracker_task_active_;
    pipeline_running_ = true;
  }
  producer_thread_ = std::thread(&AttackSession::producer_loop, this);
  if (tracker_stage_ && !tracker_on_pool_) {
    tracker_thread_ = std::thread(&AttackSession::tracker_loop, this);
  } else if (spawn_drain) {
    tracker_future_ = config_.pool->submit([this] { tracker_drain(); });
  }
}

void AttackSession::pause_pipeline() {
  if (!pipeline_running_) return;
  {
    MutexLock lock(mu_);
    producer_stop_ = true;
  }
  cv_.notify_all();
  producer_thread_.join();
  if (tracker_stage_) {
    if (tracker_on_pool_) {
      // The drain task exits only once `tracking_` is empty (or on error);
      // its future is the completion barrier (ready strictly after the
      // task function has returned, so the task can never touch session
      // state after this wait — which is what makes destruction safe).
      if (tracker_future_.valid()) tracker_future_.wait();
    } else {
      {
        MutexLock lock(mu_);
        tracker_stop_ = true;
      }
      cv_.notify_all();
      tracker_thread_.join();  // drains its queue before exiting
    }
  }
  // Every stage thread has now been joined (or its drain future waited
  // out), so the lock below is uncontended — held so the drain stays
  // inside the annotated protocol.
  std::exception_ptr error;
  {
    MutexLock lock(mu_);
    // Chunks generated but not yet consumed survive as pending work: they
    // are either consumed on the next step() or serialized by
    // save_state(), so no generated guess is ever lost or repeated.
    while (!ready_.empty()) {
      pending_.push_back(std::move(ready_.front()));
      ready_.pop_front();
    }
    error = pipeline_error_;
    pipeline_error_ = nullptr;
  }
  pipeline_running_ = false;
  if (error) std::rethrow_exception(error);
  last_synced_unique_ = tracker_->count();
}

void AttackSession::producer_loop() {
  try {
    for (;;) {
      std::size_t chunk_index;
      {
        ReleasableMutexLock lock(mu_);
        while (!producer_stop_ &&
               generated_chunks_ >= consumed_chunks_ + config_.pipeline_depth) {
          cv_.wait(lock);
        }
        if (producer_stop_) return;
        chunk_index = generated_chunks_;
      }
      if (chunk_index >= schedule_.size()) return;

      auto chunk = std::make_shared<Chunk>();
      chunk->batch.reserve(schedule_[chunk_index]);
      generator_->generate(schedule_[chunk_index], chunk->batch);
      matcher_->contains_batch(chunk->batch, config_.pool,
                               chunk->membership);
      chunk->has_membership = true;

      {
        MutexLock lock(mu_);
        ready_.push_back(std::move(chunk));
        generated_chunks_ = chunk_index + 1;
      }
      cv_.notify_all();
    }
  } catch (...) {
    MutexLock lock(mu_);
    pipeline_error_ = std::current_exception();
    cv_.notify_all();
  }
}

void AttackSession::tracker_loop() {
  std::shared_ptr<Chunk> chunk;
  try {
    for (;;) {
      {
        ReleasableMutexLock lock(mu_);
        while (!tracker_stop_ && tracking_.empty()) cv_.wait(lock);
        if (tracking_.empty()) return;  // stop requested and fully drained
        chunk = std::move(tracking_.front());
        tracking_.pop_front();
      }
      tracker_->add_batch(chunk->batch, config_.pool);
      chunk.reset();
      {
        MutexLock lock(mu_);
        ++tracked_chunks_;
        published_unique_ = tracker_->count();
      }
      cv_.notify_all();
    }
  } catch (...) {
    MutexLock lock(mu_);
    // Same requeue as the pool drain: the consumed chunk's guesses are
    // still owed to the tracker; a restarted pipeline re-folds it.
    if (chunk) tracking_.push_front(std::move(chunk));
    pipeline_error_ = std::current_exception();
    cv_.notify_all();
  }
}

bool AttackSession::merge_unique_sketch(util::CardinalitySketch& out) {
  check_usable();
  if (pipeline_running_ && tracker_stage_) {
    // Same barrier as a checkpoint: the contribution must cover exactly
    // the chunks consumed so far, so park until the tracker stage has
    // folded all of them (it is fed by the consumer, so it can never be
    // ahead).
    ReleasableMutexLock lock(mu_);
    while (!pipeline_error_ &&
           !(tracking_.empty() && tracked_chunks_ == consumed_chunks_)) {
      cv_.wait(lock);
    }
    if (pipeline_error_) {
      lock.unlock();
      pause_pipeline();  // joins the stages and rethrows the stored error
      return false;      // not reached
    }
  }
  return tracker_->merge_into(out);
}

// ---- save / resume -------------------------------------------------------

void AttackSession::save_state(std::ostream& out) {
  check_usable();
  if (!generator_->supports_state_serialization()) {
    throw std::logic_error(
        "AttackSession::save_state requires a generator with state "
        "serialization (generator '" +
        generator_->name() + "' has none)");
  }
  pause_pipeline();

  out.write(kMagic, sizeof(kMagic) - 1);
  // Run-shape echo, validated on load: a resumed session must describe
  // the same attack or its metrics would silently diverge. The generator
  // name guards against thawing a stream into a different strategy (or a
  // differently-configured one, for generators whose name reflects
  // configuration, e.g. "PassFlow-Dynamic+GS" vs "PassFlow-Dynamic").
  io::write_string(out, generator_->name());
  io::write_u64(out, config_.budget);
  io::write_u64(out, config_.chunk_size);
  io::write_u64(out, config_.non_matched_samples);
  io::write_u64(out, static_cast<std::uint64_t>(config_.unique_tracking));
  io::write_u64(out, config_.checkpoints.size());
  for (const std::size_t cp : config_.checkpoints) io::write_u64(out, cp);

  io::write_u64(out, produced_);
  io::write_u64(out, next_chunk_);
  io::write_u64(out, checkpoint_index_);
  io::write_f64(out, seconds_accum_ +
                         (timer_started_ ? timer_.elapsed_seconds() : 0.0));

  io::write_u64(out, result_.checkpoints.size());
  for (const Checkpoint& cp : result_.checkpoints) {
    io::write_u64(out, cp.guesses);
    io::write_u64(out, cp.unique);
    io::write_u64(out, cp.matched);
    io::write_f64(out, cp.matched_percent);
  }
  io::write_string_vec(out, result_.matched_passwords);
  io::write_string_vec(out, result_.sample_non_matched);

  tracker_->save(out);

  {
    // Chunks generated ahead of consumption when the pipeline paused. The
    // generator's stream state (below) is already positioned past them.
    // The pipeline was paused above, so the lock is uncontended.
    MutexLock lock(mu_);
    io::write_u64(out, pending_.size());
    for (const auto& chunk : pending_) io::write_string_vec(out, chunk->batch);
  }

  generator_->save_state(out);
  out.write(kEndMagic, sizeof(kEndMagic) - 1);
  if (!out) throw std::runtime_error("AttackSession state write failed");
}

void AttackSession::load_state(std::istream& in) {
  check_usable();
  if (produced_ != 0 || next_chunk_ != 0 || !result_.checkpoints.empty()) {
    throw std::logic_error(
        "AttackSession::load_state must run before the first step()");
  }
  try {
    load_state_impl(in);
  } catch (...) {
    // The stream failed partway: bookkeeping, tracker and generator state
    // are now mutually inconsistent. Poison the session so the half-thawed
    // attack can never run — resuming it would report wrong metrics with
    // no sign anything was lost.
    load_failed_ = true;
    throw;
  }
}

void AttackSession::load_state_impl(std::istream& in) {
  io::expect_magic(in, kMagic, "AttackSession");

  const std::string saved_generator = io::read_string(in);
  if (saved_generator != generator_->name()) {
    throw std::runtime_error("saved session was produced by generator '" +
                             saved_generator + "', not '" +
                             generator_->name() + "'");
  }

  const auto check = [](std::uint64_t saved, std::uint64_t live,
                        const char* what) {
    if (saved != live) {
      throw std::runtime_error(
          std::string("saved session does not match this config: ") + what +
          " was " + std::to_string(saved) + ", live " + std::to_string(live));
    }
  };
  check(io::read_u64(in), config_.budget, "budget");
  check(io::read_u64(in), config_.chunk_size, "chunk_size");
  check(io::read_u64(in), config_.non_matched_samples,
        "non_matched_samples");
  check(io::read_u64(in),
        static_cast<std::uint64_t>(config_.unique_tracking),
        "unique_tracking");
  check(io::read_u64(in), config_.checkpoints.size(), "checkpoint count");
  for (std::size_t i = 0; i < config_.checkpoints.size(); ++i) {
    check(io::read_u64(in), config_.checkpoints[i], "checkpoint value");
  }

  produced_ = io::read_u64(in);
  next_chunk_ = io::read_u64(in);
  checkpoint_index_ = io::read_u64(in);
  seconds_accum_ = io::read_f64(in);
  timer_started_ = false;

  const std::uint64_t checkpoint_count = io::read_u64(in);
  result_.checkpoints.clear();
  for (std::uint64_t i = 0; i < checkpoint_count; ++i) {
    Checkpoint cp;
    cp.guesses = io::read_u64(in);
    cp.unique = io::read_u64(in);
    cp.matched = io::read_u64(in);
    cp.matched_percent = io::read_f64(in);
    result_.checkpoints.push_back(cp);
  }
  result_.matched_passwords = io::read_string_vec(in);
  result_.sample_non_matched = io::read_string_vec(in);
  matched_set_ = std::unordered_set<std::string>(
      result_.matched_passwords.begin(), result_.matched_passwords.end());
  // The reservoir stops inserting once full, so the seen-set is exactly
  // the sampled set.
  non_matched_seen_ = std::unordered_set<std::string>(
      result_.sample_non_matched.begin(), result_.sample_non_matched.end());

  tracker_->load(in);
  last_synced_unique_ = tracker_->count();

  const std::uint64_t pending_count = io::read_u64(in);
  {
    // load_state runs before the first step(), so no pipeline exists; the
    // lock keeps pending_ inside the annotated protocol.
    MutexLock lock(mu_);
    pending_.clear();
    for (std::uint64_t i = 0; i < pending_count; ++i) {
      auto chunk = std::make_shared<Chunk>();
      chunk->batch = io::read_string_vec(in);
      pending_.push_back(std::move(chunk));
    }
  }

  generator_->load_state(in);
  io::expect_magic(in, kEndMagic, "AttackSession trailer");
  refresh_stats();
}

}  // namespace passflow::guessing
