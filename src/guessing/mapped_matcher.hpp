// Disk-backed membership oracle: an on-disk shard index probed through
// mmap, for test sets that outgrow RAM.
//
// HashSetMatcher and ShardedMatcher hold every test-set password on the
// heap, which caps an attack at what fits in memory on one node; real
// leaked-credential corpora run to tens of GB. MappedMatcher moves the
// whole structure into one index file that the kernel pages on demand:
// probes touch only the slots and key bytes they actually read, so peak
// RSS stays bounded by the working set, not the corpus.
//
// Index file layout (all integers little-endian, offsets absolute):
//
//   header   (48 B)   magic "PFMIDX1\n" | format version u64 | hash seed
//                     u64 | shard count u64 | key count u64 | file bytes u64
//   directory         per shard: table offset u64 | slot count u64 |
//                     arena offset u64 | arena bytes u64
//   per shard         open-addressing slot table (24 B slots: stored hash
//                     u64 | key offset+1 u64 | key length u32 | pad u32),
//                     then the arena of raw key bytes, both 8-byte aligned
//
// A key lives in shard hash64(key) % shard_count (the same stable hash and
// placement rule as ShardedMatcher) and probes linearly from
// mix64(hash) & (slot_count - 1); slots store the full 64-bit hash so a
// probe compares key bytes at most once per true candidate. The loader
// validates magic, version, hash seed and every declared extent against
// the real file size, so corrupt or foreign files fail loudly instead of
// faulting mid-attack.
//
// IndexBuilder writes the file from a streamed wordlist in bounded memory:
// pass 1 spills (hash, key) records to one temp file per shard, pass 2
// deduplicates and lays out one shard at a time — peak memory is the
// largest single shard, ~index_size / num_shards.
//
// Answers are identical to HashSetMatcher over the same key set, so every
// session/scheduler metric is bitwise unchanged when an attack swaps the
// in-memory matcher for a mapped one.
#pragma once

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "guessing/matcher.hpp"
#include "util/mmap_file.hpp"
#include "util/timer.hpp"

namespace passflow::guessing {

// On-disk format constants. The hash seed is pinned to util::hash64's
// default: stored hashes and shard assignments were computed with it, so a
// header carrying any other seed cannot be probed correctly and is
// rejected at load.
inline constexpr char kIndexMagic[9] = "PFMIDX1\n";  // 8 bytes on disk
inline constexpr std::uint64_t kIndexFormatVersion = 1;
inline constexpr std::uint64_t kIndexHashSeed = 0x9e3779b97f4a7c15ULL;
inline constexpr std::size_t kIndexHeaderBytes = 48;
inline constexpr std::size_t kIndexDirEntryBytes = 32;
inline constexpr std::size_t kIndexSlotBytes = 24;

struct IndexBuilderConfig {
  // One temp spill file and one final table+arena per shard; peak build
  // memory is the largest shard (~total index bytes / num_shards), so more
  // shards = less RAM. Probe cost does not depend on the shard count.
  std::size_t num_shards = 16;
  // Occupied fraction of each shard's slot table (clamped to [0.1, 0.9]).
  // Lower = fewer probe collisions, larger file.
  double max_load_factor = 0.7;
};

struct IndexBuildStats {
  std::size_t keys_seen = 0;      // add() calls, duplicates included
  std::size_t keys_distinct = 0;  // keys in the final index
  std::size_t shard_count = 0;
  std::size_t file_bytes = 0;
  std::size_t peak_shard_bytes = 0;  // largest table+arena built in memory
  double seconds = 0.0;
};

// Streams a wordlist into an index file. Usage:
//
//   IndexBuilder builder(config);
//   builder.begin("rockyou.pfidx");
//   for (const auto& password : stream) builder.add(password);
//   IndexBuildStats stats = builder.finish();
//
// add() only hashes and spills (O(1) memory); the shard tables are built
// one at a time inside finish(). Keys may contain arbitrary bytes,
// including NUL and newline. Duplicates are deduplicated. The written file
// is byte-identical for identical key streams.
class IndexBuilder {
 public:
  explicit IndexBuilder(IndexBuilderConfig config = IndexBuilderConfig());
  // Abandoning a build (destruction before finish(), or a finish() that
  // threw) removes the spill temp files and any partial index, and leaves
  // the builder ready for a fresh begin().
  ~IndexBuilder();

  void begin(const std::string& out_path);
  // Throws std::invalid_argument for keys longer than 4 GiB - 1 (the
  // format's u32 key-length field).
  void add(std::string_view key);
  IndexBuildStats finish();

  // One-shot conveniences over begin/add/finish.
  static IndexBuildStats build(const std::vector<std::string>& keys,
                               const std::string& out_path,
                               IndexBuilderConfig config = IndexBuilderConfig());
  // Newline-delimited wordlist ('\r' before '\n' is stripped; other bytes
  // pass through verbatim).
  static IndexBuildStats build_wordlist(std::istream& words,
                                        const std::string& out_path,
                                        IndexBuilderConfig config = IndexBuilderConfig());

 private:
  std::string spill_path(std::size_t shard) const;
  IndexBuildStats finish_impl();
  // Closes and removes the spill files and the (partial) output file.
  void discard();

  IndexBuilderConfig config_;
  std::string out_path_;
  std::vector<std::ofstream> spills_;
  std::size_t keys_seen_ = 0;
  util::Timer timer_;  // reset in begin(); stats.seconds spans add()s too
  bool active_ = false;
};

// Probes an IndexBuilder file through a read-only mmap. Construction
// validates the header and every declared extent, then advises the kernel
// for random access; probes after that touch only the pages they read.
// Immutable and safe for concurrent use from any number of threads, like
// every Matcher.
class MappedMatcher : public Matcher {
 public:
  explicit MappedMatcher(const std::string& index_path);

  // Range-restricted view for distributed shard splits: contains() answers
  // true only for keys whose shard falls in [shard_begin, shard_end) —
  // keys hashing elsewhere are false without touching the file — and
  // test_set_size() is the number of keys stored in those shards (counted
  // once at construction by scanning their slot tables). Ranges from
  // split_shard_ranges over shard_count() partition the full matcher:
  // per-range sizes sum to the full size and exactly one range answers
  // true for any indexed key, so distributed per-range match counts merge
  // by plain addition.
  MappedMatcher(const std::string& index_path, std::size_t shard_begin,
                std::size_t shard_end);

  bool contains(const std::string& password) const override;
  std::size_t test_set_size() const override { return key_count_; }
  std::string name() const override;
  void contains_batch(const std::vector<std::string>& batch,
                      util::ThreadPool* pool,
                      std::vector<char>& out) const override;

  std::size_t shard_count() const { return shards_.size(); }
  std::size_t shard_begin() const { return shard_begin_; }
  std::size_t shard_end() const { return shard_end_; }
  std::size_t file_bytes() const { return file_.size(); }
  const std::string& path() const { return file_.path(); }

 private:
  struct ShardView {
    const unsigned char* table = nullptr;
    std::size_t slot_count = 0;  // power of two (0 for an empty shard)
    const unsigned char* arena = nullptr;
    std::size_t arena_bytes = 0;
  };

  bool probe_shard(const ShardView& shard, std::uint64_t hash,
                   std::string_view key) const;

  util::MmapFile file_;
  std::vector<ShardView> shards_;
  std::size_t key_count_ = 0;
  // Active shard range [begin, end); the full-matcher constructor covers
  // every shard.
  std::size_t shard_begin_ = 0;
  std::size_t shard_end_ = 0;
};

}  // namespace passflow::guessing
