// Latent-space interpolation between two passwords (Algorithm 2, Fig. 3).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "data/encoder.hpp"
#include "flow/flow_model.hpp"

namespace passflow::guessing {

// Walks the straight line from f(start) to f(target) in latent space in
// `steps` increments, mapping each intermediate point back to a password.
// Returns steps+1 passwords; the first decodes f^-1(f(start)) and the last
// f^-1(f(target)) (round-trips of the endpoints).
std::vector<std::string> interpolate(const flow::FlowModel& model,
                                     const data::Encoder& encoder,
                                     const std::string& start,
                                     const std::string& target,
                                     std::size_t steps);

// Latent-space representation of one password (deterministic encoding).
std::vector<float> latent_of(const flow::FlowModel& model,
                             const data::Encoder& encoder,
                             const std::string& password);

}  // namespace passflow::guessing
