#include "guessing/scheduler.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

namespace passflow::guessing {

namespace {

ScenarioSnapshot make_snapshot(std::size_t id, const std::string& name,
                               double weight, ScenarioStatus status,
                               std::size_t chunks_driven,
                               const SessionStats& stats) {
  ScenarioSnapshot snap;
  snap.id = id;
  snap.name = name;
  snap.weight = weight;
  snap.status = status;
  snap.chunks_driven = chunks_driven;
  snap.stats = stats;
  return snap;
}

}  // namespace

const char* scenario_status_name(ScenarioStatus status) {
  switch (status) {
    case ScenarioStatus::kRunning:
      return "running";
    case ScenarioStatus::kPaused:
      return "paused";
    case ScenarioStatus::kFinished:
      return "finished";
  }
  return "unknown";
}

AttackScheduler::AttackScheduler(SchedulerConfig config)
    : config_(std::move(config)) {
  if (config_.slice_chunks == 0) {
    throw std::invalid_argument("SchedulerConfig::slice_chunks must be > 0");
  }
}

AttackScheduler::~AttackScheduler() = default;

std::size_t AttackScheduler::add_scenario(GuessGenerator& generator,
                                          MatcherRef matcher,
                                          ScenarioOptions options) {
  if (!(options.weight > 0.0)) {
    throw std::invalid_argument("ScenarioOptions::weight must be > 0");
  }
  // One pool budget for the whole fleet: whatever the caller put in the
  // per-scenario config is overridden, by design.
  options.session.pool = config_.pool;
  auto scenario = std::make_shared<Scenario>();
  scenario->name = std::move(options.name);
  scenario->weight = options.weight;
  scenario->status = options.start_paused ? ScenarioStatus::kPaused
                                          : ScenarioStatus::kRunning;
  scenario->session = std::make_unique<AttackSession>(
      generator, std::move(matcher), std::move(options.session));
  scenario->snapshot = scenario->session->stats();

  std::size_t id = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    id = next_id_++;
    scenario->id = id;
    if (scenario->name.empty()) {
      scenario->name = "scenario-" + std::to_string(id);
    }
    // Late joiners start at the fleet's current virtual now (the minimum
    // live virtual time), the standard fair-queuing rule: a scenario added
    // mid-run gets its fair share from here on, it does not get to replay
    // the past and starve everyone until it "catches up".
    double virtual_now = std::numeric_limits<double>::infinity();
    for (const auto& other : scenarios_) {
      if (other->status != ScenarioStatus::kFinished && !other->removing) {
        virtual_now = std::min(virtual_now, other->virtual_time);
      }
    }
    scenario->virtual_time =
        virtual_now == std::numeric_limits<double>::infinity() ? 0.0
                                                               : virtual_now;
    scenarios_.push_back(std::move(scenario));
  }
  cv_.notify_all();  // a parked driver may now have work
  return id;
}

std::shared_ptr<AttackScheduler::Scenario> AttackScheduler::find_scenario(
    std::size_t id) const {
  for (const auto& scenario : scenarios_) {
    if (scenario->id == id) return scenario;
  }
  throw std::out_of_range("AttackScheduler: no scenario with id " +
                          std::to_string(id));
}

AttackScheduler::Scenario* AttackScheduler::pick_next_locked() const {
  Scenario* best = nullptr;
  for (const auto& scenario : scenarios_) {
    if (scenario->status != ScenarioStatus::kRunning || scenario->in_flight ||
        scenario->removing) {
      continue;
    }
    // Strict < keeps the earliest-registered scenario on ties, so the
    // schedule is a pure function of weights and completion pattern.
    if (best == nullptr || scenario->virtual_time < best->virtual_time) {
      best = scenario.get();
    }
  }
  return best;
}

bool AttackScheduler::any_runnable_locked() const {
  for (const auto& scenario : scenarios_) {
    if (scenario->status == ScenarioStatus::kRunning && !scenario->removing) {
      return true;
    }
  }
  return false;
}

void AttackScheduler::note_driving_started_locked() {
  if (!timer_started_) {
    timer_.reset();
    timer_started_ = true;
  }
}

void AttackScheduler::run_slice(Scenario& scenario) {
  std::size_t steps = 0;
  std::exception_ptr error;
  try {
    for (std::size_t i = 0; i < config_.slice_chunks; ++i) {
      if (!scenario.session->step()) break;
      ++steps;
    }
  } catch (...) {
    error = std::current_exception();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    scenario.chunks_driven += steps;
    scenario.virtual_time += static_cast<double>(steps) / scenario.weight;
    scenario.snapshot = scenario.session->stats();
    if (error) {
      // A broken session (generator threw, pipeline error) cannot take
      // more slices; park it as finished and surface the error to whoever
      // is driving.
      scenario.status = ScenarioStatus::kFinished;
      if (!first_error_) first_error_ = error;
    } else if (scenario.session->finished()) {
      scenario.status = ScenarioStatus::kFinished;
    }
    scenario.in_flight = false;
    --active_slices_;
  }
  cv_.notify_all();
}

bool AttackScheduler::step() {
  Scenario* scenario = nullptr;
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return !quiesce_; });
    scenario = pick_next_locked();
    if (scenario == nullptr) return false;
    scenario->in_flight = true;
    ++active_slices_;
    note_driving_started_locked();
  }
  run_slice(*scenario);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (first_error_) {
      const std::exception_ptr error = first_error_;
      first_error_ = nullptr;
      std::rethrow_exception(error);
    }
  }
  return true;
}

void AttackScheduler::driver_loop() {
  for (;;) {
    Scenario* scenario = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      for (;;) {
        if (!quiesce_) scenario = pick_next_locked();
        if (scenario != nullptr) break;
        // Exit only when the fleet is truly drained: nothing runnable
        // (ignoring the quiesce gate — that is temporary) and no slice in
        // flight that could finish and unpark more work.
        if (active_slices_ == 0 && !any_runnable_locked()) return;
        cv_.wait(lock);
      }
      scenario->in_flight = true;
      ++active_slices_;
      note_driving_started_locked();
    }
    run_slice(*scenario);
  }
}

void AttackScheduler::run() {
  std::size_t drivers = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t runnable = 0;
    for (const auto& scenario : scenarios_) {
      if (scenario->status == ScenarioStatus::kRunning && !scenario->removing) {
        ++runnable;
      }
    }
    if (runnable == 0) return;  // paused-only fleets are left paused
    drivers = config_.max_concurrent != 0
                  ? config_.max_concurrent
                  : std::min(runnable,
                             std::max<std::size_t>(
                                 1, std::thread::hardware_concurrency()));
  }
  std::vector<std::thread> threads;
  threads.reserve(drivers);
  for (std::size_t i = 0; i < drivers; ++i) {
    threads.emplace_back([this] { driver_loop(); });
  }
  for (auto& thread : threads) thread.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (first_error_) {
      const std::exception_ptr error = first_error_;
      first_error_ = nullptr;
      std::rethrow_exception(error);
    }
  }
}

bool AttackScheduler::finished() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_slices_ == 0 && !any_runnable_locked();
}

std::size_t AttackScheduler::scenario_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return scenarios_.size();
}

ScenarioSnapshot AttackScheduler::scenario(std::size_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const std::shared_ptr<Scenario> scenario = find_scenario(id);
  return make_snapshot(scenario->id, scenario->name, scenario->weight,
                       scenario->status, scenario->chunks_driven,
                       scenario->snapshot);
}

std::vector<ScenarioSnapshot> AttackScheduler::scenarios() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ScenarioSnapshot> snaps;
  snaps.reserve(scenarios_.size());
  for (const auto& scenario : scenarios_) {
    snaps.push_back(make_snapshot(scenario->id, scenario->name,
                                  scenario->weight, scenario->status,
                                  scenario->chunks_driven,
                                  scenario->snapshot));
  }
  return snaps;
}

void AttackScheduler::pause_scenario(std::size_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::shared_ptr<Scenario> scenario = find_scenario(id);
  if (scenario->status == ScenarioStatus::kRunning) {
    scenario->status = ScenarioStatus::kPaused;
  }
  // An in-flight slice always completes; pausing only stops new ones.
}

void AttackScheduler::resume_scenario(std::size_t id) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    const std::shared_ptr<Scenario> scenario = find_scenario(id);
    if (scenario->status == ScenarioStatus::kPaused) {
      scenario->status = ScenarioStatus::kRunning;
    }
  }
  cv_.notify_all();
}

RunResult AttackScheduler::remove_scenario(std::size_t id) {
  std::unique_lock<std::mutex> lock(mu_);
  // The shared_ptr keeps the scenario alive across the wait even if a
  // concurrent remove_scenario(id) erases the vector entry first.
  const std::shared_ptr<Scenario> scenario = find_scenario(id);
  scenario->removing = true;  // no new slices from this point
  cv_.wait(lock, [&] { return !scenario->in_flight; });
  bool erased = false;
  for (auto it = scenarios_.begin(); it != scenarios_.end(); ++it) {
    if (it->get() == scenario.get()) {
      scenarios_.erase(it);
      erased = true;
      break;
    }
  }
  if (!erased) {
    throw std::out_of_range("AttackScheduler: scenario " +
                            std::to_string(id) + " was already removed");
  }
  RunResult result = scenario->session->result();
  lock.unlock();
  cv_.notify_all();  // drained drivers may now be able to exit
  return result;
  // `scenario` (and its session, joining any pipeline threads) is
  // destroyed here, after the lock is released.
}

RunResult AttackScheduler::result(std::size_t id) const {
  std::unique_lock<std::mutex> lock(mu_);
  const std::shared_ptr<Scenario> scenario = find_scenario(id);
  cv_.wait(lock, [&] { return !scenario->in_flight; });
  return scenario->session->result();
}

SchedulerStats AttackScheduler::aggregate() const {
  // Construct the union sketch before gating anything: an out-of-range
  // precision throws here, while the scheduler is still fully live.
  util::CardinalitySketch unionsketch(config_.unique_union_precision_bits);

  std::unique_lock<std::mutex> lock(mu_);
  // Quiesce: park slice dispatch and wait for in-flight slices to land so
  // every session is readable at a chunk boundary. Slices are chunk-sized,
  // so the stall is brief. Nothing below may leak an exception — an
  // unwind would leave quiesce_ set and wedge every driver forever.
  quiesce_ = true;
  cv_.wait(lock, [&] { return active_slices_ == 0; });

  SchedulerStats stats;
  stats.scenarios = scenarios_.size();
  stats.unique_union_valid = !scenarios_.empty();
  for (const auto& scenario : scenarios_) {
    switch (scenario->status) {
      case ScenarioStatus::kRunning:
        ++stats.running;
        break;
      case ScenarioStatus::kPaused:
        ++stats.paused;
        break;
      case ScenarioStatus::kFinished:
        ++stats.finished;
        break;
    }
    stats.produced += scenario->snapshot.produced;
    stats.matched += scenario->snapshot.matched;
    if (stats.unique_union_valid) {
      try {
        if (!scenario->session->merge_unique_sketch(unionsketch)) {
          stats.unique_union_valid = false;  // kOff contributes nothing
        }
      } catch (const std::invalid_argument&) {
        stats.unique_union_valid = false;  // sketch precision mismatch
      } catch (...) {
        // A broken session (merge_unique_sketch surfaces stored pipeline
        // errors) cannot contribute or take more slices; park it and hand
        // the error to whoever drives next, like a failed slice would.
        stats.unique_union_valid = false;
        scenario->status = ScenarioStatus::kFinished;
        if (!first_error_) first_error_ = std::current_exception();
      }
    }
  }
  if (stats.unique_union_valid) stats.unique_union = unionsketch.estimate();
  stats.seconds = timer_started_ ? timer_.elapsed_seconds() : 0.0;
  stats.guesses_per_second =
      stats.seconds > 0.0
          ? static_cast<double>(stats.produced) / stats.seconds
          : 0.0;

  quiesce_ = false;
  lock.unlock();
  cv_.notify_all();
  return stats;
}

}  // namespace passflow::guessing
