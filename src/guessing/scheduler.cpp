#include "guessing/scheduler.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

namespace passflow::guessing {

namespace {

double seconds_between(std::chrono::steady_clock::time_point from,
                       std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

std::chrono::steady_clock::time_point after_seconds(
    std::chrono::steady_clock::time_point from, double seconds) {
  // Clamp: a near-zero rate cap can project a refill centuries out, which
  // overflows the duration cast. An hour-late rescan is indistinguishable
  // from "never" for scheduling purposes.
  seconds = std::min(seconds, 3600.0);
  return from + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(seconds));
}

}  // namespace

const char* scenario_status_name(ScenarioStatus status) {
  switch (status) {
    case ScenarioStatus::kRunning:
      return "running";
    case ScenarioStatus::kPaused:
      return "paused";
    case ScenarioStatus::kFinished:
      return "finished";
  }
  return "unknown";
}

AttackScheduler::AttackScheduler(SchedulerConfig config)
    : config_(std::move(config)) {
  if (config_.slice_chunks == 0) {
    throw std::invalid_argument("SchedulerConfig::slice_chunks must be > 0");
  }
  if (!(config_.deadline_boost >= 1.0)) {
    throw std::invalid_argument(
        "SchedulerConfig::deadline_boost must be >= 1");
  }
  if (!(config_.rate_cap_burst_seconds > 0.0)) {
    throw std::invalid_argument(
        "SchedulerConfig::rate_cap_burst_seconds must be > 0");
  }
}

AttackScheduler::~AttackScheduler() = default;

std::size_t AttackScheduler::add_scenario(GuessGenerator& generator,
                                          MatcherRef matcher,
                                          ScenarioOptions options) {
  if (!(options.weight > 0.0)) {
    throw std::invalid_argument("ScenarioOptions::weight must be > 0");
  }
  if (options.deadline_seconds < 0.0) {
    throw std::invalid_argument(
        "ScenarioOptions::deadline_seconds must be >= 0");
  }
  if (options.rate_cap < 0.0) {
    throw std::invalid_argument("ScenarioOptions::rate_cap must be >= 0");
  }
  // One pool budget for the whole fleet: whatever the caller put in the
  // per-scenario config is overridden, by design.
  options.session.pool = config_.pool;
  auto scenario = std::make_shared<Scenario>();
  scenario->name = std::move(options.name);
  scenario->weight = options.weight;
  scenario->status = options.start_paused ? ScenarioStatus::kPaused
                                          : ScenarioStatus::kRunning;
  const Clock::time_point now = Clock::now();
  scenario->deadline_seconds = options.deadline_seconds;
  scenario->has_deadline = options.deadline_seconds > 0.0;
  if (scenario->has_deadline) {
    scenario->deadline_at = after_seconds(now, options.deadline_seconds);
  }
  scenario->rate_cap = options.rate_cap;
  if (scenario->rate_cap > 0.0) {
    scenario->token_capacity =
        scenario->rate_cap * config_.rate_cap_burst_seconds;
    scenario->tokens = 0.0;  // no free initial burst: achieved rate <= cap
    scenario->last_refill = now;
  }
  scenario->session = std::make_unique<AttackSession>(
      generator, std::move(matcher), std::move(options.session));
  scenario->snapshot = scenario->session->stats();

  std::size_t id = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    id = next_id_++;
    scenario->id = id;
    if (scenario->name.empty()) {
      scenario->name = "scenario-" + std::to_string(id);
    }
    // Late joiners start at the fleet's current virtual now (the minimum
    // virtual time over *running* scenarios), the standard fair-queuing
    // rule: a scenario added mid-run gets its fair share from here on, it
    // does not get to replay the past and starve everyone until it
    // "catches up". Paused scenarios are excluded — a long-parked
    // scenario's stale clock must not drag late joiners into the past.
    const double virtual_now = virtual_now_locked();
    scenario->virtual_time =
        virtual_now == std::numeric_limits<double>::infinity() ? 0.0
                                                               : virtual_now;
    scenarios_.push_back(std::move(scenario));
  }
  cv_.notify_all();  // a parked driver may now have work
  return id;
}

std::shared_ptr<AttackScheduler::Scenario> AttackScheduler::find_scenario(
    std::size_t id) const {
  for (const auto& scenario : scenarios_) {
    if (scenario->id == id) return scenario;
  }
  throw std::out_of_range("AttackScheduler: no scenario with id " +
                          std::to_string(id));
}

double AttackScheduler::virtual_now_locked() const {
  double virtual_now = std::numeric_limits<double>::infinity();
  for (const auto& scenario : scenarios_) {
    if (scenario->status == ScenarioStatus::kRunning && !scenario->removing) {
      virtual_now = std::min(virtual_now, scenario->virtual_time);
    }
  }
  return virtual_now;
}

bool AttackScheduler::past_deadline_locked(const Scenario& scenario) const {
  if (!scenario.has_deadline) return false;
  if (scenario.status == ScenarioStatus::kFinished) {
    return scenario.missed_deadline;  // latched at finish time
  }
  return Clock::now() > scenario.deadline_at;
}

double AttackScheduler::effective_weight_locked(
    const Scenario& scenario) const {
  double weight = scenario.weight;
  if (scenario.has_deadline && Clock::now() > scenario.deadline_at) {
    weight *= config_.deadline_boost;
  }
  return weight;
}

AttackScheduler::Scenario* AttackScheduler::pick_next_locked(
    Clock::time_point now, Clock::time_point* next_eligible) {
  Scenario* best = nullptr;
  for (const auto& entry : scenarios_) {
    Scenario& scenario = *entry;
    if (scenario.status != ScenarioStatus::kRunning || scenario.in_flight ||
        scenario.removing) {
      continue;
    }
    if (scenario.rate_cap > 0.0) {
      // Lazy token refill; the bucket may be negative from the last
      // slice's debit, so eligibility is simply "back above zero".
      const double elapsed = seconds_between(scenario.last_refill, now);
      if (elapsed > 0.0) {
        scenario.tokens = std::min(
            scenario.token_capacity,
            scenario.tokens + scenario.rate_cap * elapsed);
        scenario.last_refill = now;
      }
      if (scenario.tokens <= 0.0) {
        // Skipped without burning a slice; tell the caller when this
        // bucket next crosses zero so a driver can park exactly that long.
        const Clock::time_point refill_at = after_seconds(
            now, (1.0 - scenario.tokens) / scenario.rate_cap);
        if (next_eligible != nullptr && refill_at < *next_eligible) {
          *next_eligible = refill_at;
        }
        continue;
      }
    }
    // Strict < keeps the earliest-registered scenario on ties, so the
    // schedule is a pure function of weights and completion pattern.
    if (best == nullptr || scenario.virtual_time < best->virtual_time) {
      best = &scenario;
    }
  }
  return best;
}

bool AttackScheduler::any_runnable_locked() const {
  for (const auto& scenario : scenarios_) {
    if (scenario->status == ScenarioStatus::kRunning && !scenario->removing) {
      return true;
    }
  }
  return false;
}

void AttackScheduler::note_driving_started_locked() {
  if (!timer_started_) {
    timer_.reset();
    timer_started_ = true;
  }
}

void AttackScheduler::dispatch_locked(Scenario& scenario) {
  scenario.in_flight = true;
  ++active_slices_;
  note_driving_started_locked();
  if (!scenario.started) {
    scenario.started = true;
    scenario.first_slice_at = Clock::now();
    scenario.last_slice_at = scenario.first_slice_at;
  }
}

void AttackScheduler::mark_finished_locked(Scenario& scenario) const {
  scenario.status = ScenarioStatus::kFinished;
  if (scenario.has_deadline) {
    scenario.missed_deadline = Clock::now() > scenario.deadline_at;
  }
}

void AttackScheduler::run_slice(Scenario& scenario) {
  // stats() is safe to read here: only the thread driving this slice
  // touches the session, and in_flight excludes everyone else.
  const std::size_t produced_before = scenario.session->stats().produced;
  std::size_t steps = 0;
  std::exception_ptr error;
  try {
    for (std::size_t i = 0; i < config_.slice_chunks; ++i) {
      if (!scenario.session->step()) break;
      ++steps;
    }
  } catch (...) {
    error = std::current_exception();
  }
  const std::size_t produced_delta =
      scenario.session->stats().produced - produced_before;
  {
    std::lock_guard<std::mutex> lock(mu_);
    scenario.chunks_driven += steps;
    scenario.virtual_time +=
        static_cast<double>(steps) / effective_weight_locked(scenario);
    if (scenario.rate_cap > 0.0) {
      scenario.tokens -= static_cast<double>(produced_delta);
    }
    scenario.last_slice_at = Clock::now();
    scenario.snapshot = scenario.session->stats();
    if (error) {
      // A broken session (generator threw, pipeline error) cannot take
      // more slices; park it as finished and surface the error to whoever
      // is driving.
      mark_finished_locked(scenario);
      if (!first_error_) first_error_ = error;
    } else if (scenario.session->finished()) {
      mark_finished_locked(scenario);
    }
    scenario.in_flight = false;
    --active_slices_;
  }
  cv_.notify_all();
}

bool AttackScheduler::step() {
  Scenario* scenario = nullptr;
  {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      cv_.wait(lock, [&] { return quiesce_count_ == 0; });
      Clock::time_point next_eligible = Clock::time_point::max();
      scenario = pick_next_locked(Clock::now(), &next_eligible);
      if (scenario != nullptr) break;
      if (next_eligible == Clock::time_point::max()) return false;
      // Everything runnable is rate-capped out: the fleet is throttled,
      // not drained, so sleep to the earliest refill and try again.
      cv_.wait_until(lock, next_eligible);
    }
    dispatch_locked(*scenario);
  }
  run_slice(*scenario);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (first_error_) {
      const std::exception_ptr error = first_error_;
      first_error_ = nullptr;
      std::rethrow_exception(error);
    }
  }
  return true;
}

void AttackScheduler::driver_loop() {
  for (;;) {
    Scenario* scenario = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      for (;;) {
        Clock::time_point next_eligible = Clock::time_point::max();
        if (quiesce_count_ == 0) {
          scenario = pick_next_locked(Clock::now(), &next_eligible);
        }
        if (scenario != nullptr) break;
        // Exit only when the fleet is truly drained: nothing runnable
        // (ignoring the quiesce gate — that is temporary — and rate caps,
        // which merely delay) and no slice in flight that could finish
        // and unpark more work.
        if (active_slices_ == 0 && !any_runnable_locked()) return;
        // Park instead of spinning through empty picks; add_scenario,
        // resume_scenario and slice completions notify, and a pending
        // token-bucket refill bounds the wait.
        ++parked_drivers_;
        if (next_eligible != Clock::time_point::max()) {
          cv_.wait_until(lock, next_eligible);
        } else {
          cv_.wait(lock);
        }
        --parked_drivers_;
      }
      dispatch_locked(*scenario);
    }
    run_slice(*scenario);
  }
}

void AttackScheduler::run() {
  std::size_t drivers = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t runnable = 0;
    for (const auto& scenario : scenarios_) {
      if (scenario->status == ScenarioStatus::kRunning && !scenario->removing) {
        ++runnable;
      }
    }
    if (runnable == 0) return;  // paused-only fleets are left paused
    drivers = config_.max_concurrent != 0
                  ? config_.max_concurrent
                  : std::min(runnable,
                             std::max<std::size_t>(
                                 1, std::thread::hardware_concurrency()));
  }
  std::vector<std::thread> threads;
  threads.reserve(drivers);
  for (std::size_t i = 0; i < drivers; ++i) {
    threads.emplace_back([this] { driver_loop(); });
  }
  for (auto& thread : threads) thread.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (first_error_) {
      const std::exception_ptr error = first_error_;
      first_error_ = nullptr;
      std::rethrow_exception(error);
    }
  }
}

bool AttackScheduler::finished() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_slices_ == 0 && !any_runnable_locked();
}

std::size_t AttackScheduler::scenario_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return scenarios_.size();
}

ScenarioSnapshot AttackScheduler::snapshot_locked(
    const Scenario& scenario) const {
  ScenarioSnapshot snap;
  snap.id = scenario.id;
  snap.name = scenario.name;
  snap.weight = scenario.weight;
  snap.status = scenario.status;
  snap.chunks_driven = scenario.chunks_driven;
  snap.stats = scenario.snapshot;
  snap.deadline_seconds = scenario.deadline_seconds;
  snap.past_deadline = past_deadline_locked(scenario);
  snap.rate_cap = scenario.rate_cap;
  if (scenario.started) {
    const double wall =
        seconds_between(scenario.first_slice_at, scenario.last_slice_at);
    if (wall > 0.0) {
      snap.achieved_guesses_per_second =
          static_cast<double>(scenario.snapshot.produced) / wall;
    }
  }
  return snap;
}

ScenarioSnapshot AttackScheduler::scenario(std::size_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return snapshot_locked(*find_scenario(id));
}

std::vector<ScenarioSnapshot> AttackScheduler::scenarios() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ScenarioSnapshot> snaps;
  snaps.reserve(scenarios_.size());
  for (const auto& entry : scenarios_) {
    snaps.push_back(snapshot_locked(*entry));
  }
  return snaps;
}

void AttackScheduler::pause_scenario(std::size_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::shared_ptr<Scenario> scenario = find_scenario(id);
  if (scenario->status == ScenarioStatus::kRunning) {
    scenario->status = ScenarioStatus::kPaused;
  }
  // An in-flight slice always completes; pausing only stops new ones.
}

void AttackScheduler::resume_scenario(std::size_t id) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    const std::shared_ptr<Scenario> scenario = find_scenario(id);
    if (scenario->status == ScenarioStatus::kPaused) {
      // Fair-queuing resume rule: a long-paused scenario's virtual clock is
      // stale-small, and left alone it would monopolize every driver until
      // it "caught up" with the fleet. Advance it to the fleet's virtual
      // now (it was paused, so it is excluded from the scan) — it resumes
      // competing for its fair share from this moment, exactly like a late
      // joiner. max() keeps a scenario *ahead* of the fleet ahead.
      const double virtual_now = virtual_now_locked();
      if (virtual_now != std::numeric_limits<double>::infinity()) {
        scenario->virtual_time =
            std::max(scenario->virtual_time, virtual_now);
      }
      scenario->status = ScenarioStatus::kRunning;
    }
  }
  cv_.notify_all();
}

RunResult AttackScheduler::remove_scenario(std::size_t id) {
  std::shared_ptr<Scenario> scenario;
  {
    std::unique_lock<std::mutex> lock(mu_);
    // The shared_ptr keeps the scenario alive across the wait even if a
    // concurrent remove_scenario(id) erases the vector entry first.
    scenario = find_scenario(id);
    scenario->removing = true;  // no new slices from this point
    cv_.wait(lock, [&] { return !scenario->in_flight; });
    bool erased = false;
    for (auto it = scenarios_.begin(); it != scenarios_.end(); ++it) {
      if (it->get() == scenario.get()) {
        scenarios_.erase(it);
        erased = true;
        break;
      }
    }
    if (!erased) {
      throw std::out_of_range("AttackScheduler: scenario " +
                              std::to_string(id) + " was already removed");
    }
  }
  cv_.notify_all();  // drained drivers may now be able to exit
  // The result copy is built outside mu_ — the scenario is out of the
  // vector, so no driver can reach it and the copy can take its time.
  RunResult result = scenario->session->result();
  return result;
  // `scenario` (and its session, joining any pipeline threads) is
  // destroyed here, after the lock is released.
}

RunResult AttackScheduler::result(std::size_t id) const {
  std::shared_ptr<Scenario> scenario;
  {
    std::unique_lock<std::mutex> lock(mu_);
    scenario = find_scenario(id);
    cv_.wait(lock, [&] { return !scenario->in_flight; });
    // Reserve the scenario so no new slice dispatches while the result is
    // copied outside the lock; remove_scenario waits on the same flag, so
    // the session cannot be torn down under the copy either.
    scenario->in_flight = true;
  }
  RunResult result = scenario->session->result();
  {
    std::lock_guard<std::mutex> lock(mu_);
    scenario->in_flight = false;
  }
  cv_.notify_all();
  return result;
}

SchedulerStats AttackScheduler::aggregate() const {
  // Construct the union sketch before gating anything: an out-of-range
  // precision throws here, while the scheduler is still fully live.
  util::CardinalitySketch unionsketch(config_.unique_union_precision_bits);

  std::unique_lock<std::mutex> lock(mu_);
  // Quiesce: park slice dispatch and wait for in-flight slices to land so
  // every session is readable at a chunk boundary. Slices are chunk-sized,
  // so the stall is brief. The gate is a counter so concurrent aggregate()
  // calls compose: dispatch stays parked until the last merge finishes.
  // Nothing below may leak an exception — an unwind would leave the count
  // raised and wedge every driver forever; errors are deferred through
  // first_error_ and rethrown after the gate is released.
  ++quiesce_count_;
  cv_.wait(lock, [&] { return active_slices_ == 0; });

  SchedulerStats stats;
  stats.scenarios = scenarios_.size();
  stats.parked_drivers = parked_drivers_;
  stats.unique_union_valid = !scenarios_.empty();
  for (const auto& scenario : scenarios_) {
    switch (scenario->status) {
      case ScenarioStatus::kRunning:
        ++stats.running;
        break;
      case ScenarioStatus::kPaused:
        ++stats.paused;
        break;
      case ScenarioStatus::kFinished:
        ++stats.finished;
        break;
    }
    if (past_deadline_locked(*scenario)) ++stats.deadline_missed;
    stats.produced += scenario->snapshot.produced;
    stats.matched += scenario->snapshot.matched;
    if (stats.unique_union_valid) {
      try {
        if (!scenario->session->merge_unique_sketch(unionsketch)) {
          stats.unique_union_valid = false;  // kOff contributes nothing
        }
      } catch (const std::invalid_argument&) {
        stats.unique_union_valid = false;  // sketch precision mismatch
      } catch (...) {
        // A broken session (merge_unique_sketch surfaces stored pipeline
        // errors) cannot contribute or take more slices; park it and defer
        // the error like a failed slice would.
        stats.unique_union_valid = false;
        mark_finished_locked(*scenario);
        if (!first_error_) first_error_ = std::current_exception();
      }
    }
  }
  if (stats.unique_union_valid) stats.unique_union = unionsketch.estimate();
  stats.seconds = timer_started_ ? timer_.elapsed_seconds() : 0.0;
  stats.guesses_per_second =
      stats.seconds > 0.0
          ? static_cast<double>(stats.produced) / stats.seconds
          : 0.0;

  --quiesce_count_;
  // Take any pending error while still locked; rethrow only after the
  // gate is released so a throwing aggregate() can never wedge the fleet.
  // This is also the only surfacing path for an error raised after the
  // fleet finished (no driver will ever rethrow it).
  std::exception_ptr error;
  if (quiesce_count_ == 0 && first_error_) {
    error = first_error_;
    first_error_ = nullptr;
  }
  lock.unlock();
  cv_.notify_all();
  if (error) std::rethrow_exception(error);
  return stats;
}

}  // namespace passflow::guessing
