#include "guessing/scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <istream>
#include <limits>
#include <memory>
#include <ostream>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "util/serial_io.hpp"

namespace passflow::guessing {

std::vector<ShardRange> split_shard_ranges(std::size_t shard_count,
                                           std::size_t parts) {
  if (shard_count == 0) {
    throw std::invalid_argument("split_shard_ranges: shard_count is zero");
  }
  if (parts == 0) {
    throw std::invalid_argument("split_shard_ranges: parts is zero");
  }
  parts = std::min(parts, shard_count);
  const std::size_t base = shard_count / parts;
  const std::size_t remainder = shard_count % parts;
  std::vector<ShardRange> ranges;
  ranges.reserve(parts);
  std::size_t begin = 0;
  for (std::size_t i = 0; i < parts; ++i) {
    const std::size_t size = base + (i < remainder ? 1 : 0);
    ranges.push_back({begin, begin + size});
    begin += size;
  }
  return ranges;
}

namespace {

constexpr char kStateMagic[] = "PFSCHD1\n";
constexpr char kStateEndMagic[] = "PFSCHDE\n";

namespace io = util::io;

using util::MutexLock;
using util::ReleasableMutexLock;

double seconds_between(std::chrono::steady_clock::time_point from,
                       std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

std::chrono::steady_clock::time_point after_seconds(
    std::chrono::steady_clock::time_point from, double seconds) {
  // Clamp: a near-zero rate cap can project a refill centuries out, which
  // overflows the duration cast. An hour-late rescan is indistinguishable
  // from "never" for scheduling purposes.
  seconds = std::min(seconds, 3600.0);
  return from + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(seconds));
}

}  // namespace

const char* scenario_status_name(ScenarioStatus status) {
  switch (status) {
    case ScenarioStatus::kRunning:
      return "running";
    case ScenarioStatus::kPaused:
      return "paused";
    case ScenarioStatus::kFinished:
      return "finished";
  }
  return "unknown";
}

AttackScheduler::AttackScheduler(SchedulerConfig config)
    : config_(std::move(config)) {
  if (config_.slice_chunks == 0) {
    throw std::invalid_argument("SchedulerConfig::slice_chunks must be > 0");
  }
  if (!(config_.deadline_boost >= 1.0)) {
    throw std::invalid_argument(
        "SchedulerConfig::deadline_boost must be >= 1");
  }
  if (!(config_.rate_cap_burst_seconds > 0.0)) {
    throw std::invalid_argument(
        "SchedulerConfig::rate_cap_burst_seconds must be > 0");
  }
}

AttackScheduler::~AttackScheduler() = default;

std::size_t AttackScheduler::add_scenario(GuessGenerator& generator,
                                          MatcherRef matcher,
                                          ScenarioOptions options) {
  if (!(options.weight > 0.0)) {
    throw std::invalid_argument("ScenarioOptions::weight must be > 0");
  }
  if (options.deadline_seconds < 0.0) {
    throw std::invalid_argument(
        "ScenarioOptions::deadline_seconds must be >= 0");
  }
  if (options.rate_cap < 0.0) {
    throw std::invalid_argument("ScenarioOptions::rate_cap must be >= 0");
  }
  // One pool budget for the whole fleet: whatever the caller put in the
  // per-scenario config is overridden, by design.
  options.session.pool = config_.pool;
  auto scenario = std::make_shared<Scenario>();
  scenario->name = std::move(options.name);
  scenario->weight = options.weight;
  scenario->status = options.start_paused ? ScenarioStatus::kPaused
                                          : ScenarioStatus::kRunning;
  const Clock::time_point now = Clock::now();
  scenario->deadline_seconds = options.deadline_seconds;
  scenario->has_deadline = options.deadline_seconds > 0.0;
  if (scenario->has_deadline) {
    scenario->deadline_at = after_seconds(now, options.deadline_seconds);
  }
  scenario->rate_cap = options.rate_cap;
  if (scenario->rate_cap > 0.0) {
    scenario->token_capacity =
        scenario->rate_cap * config_.rate_cap_burst_seconds;
    scenario->tokens = 0.0;  // no free initial burst: achieved rate <= cap
    scenario->last_refill = now;
  }
  scenario->session = std::make_unique<AttackSession>(
      generator, std::move(matcher), std::move(options.session));
  scenario->snapshot = scenario->session->stats();

  std::size_t id = 0;
  {
    MutexLock lock(mu_);
    id = next_id_++;
    scenario->id = id;
    if (scenario->name.empty()) {
      scenario->name = "scenario-" + std::to_string(id);
    }
    // Late joiners start at the fleet's current virtual now (the minimum
    // virtual time over *running* scenarios), the standard fair-queuing
    // rule: a scenario added mid-run gets its fair share from here on, it
    // does not get to replay the past and starve everyone until it
    // "catches up". Paused scenarios are excluded — a long-parked
    // scenario's stale clock must not drag late joiners into the past.
    const double virtual_now = virtual_now_locked();
    scenario->virtual_time =
        virtual_now == std::numeric_limits<double>::infinity() ? 0.0
                                                               : virtual_now;
    scenarios_.push_back(std::move(scenario));
  }
  cv_.notify_all();  // a parked driver may now have work
  return id;
}

std::shared_ptr<AttackScheduler::Scenario> AttackScheduler::find_scenario_locked(
    std::size_t id) const {
  for (const auto& scenario : scenarios_) {
    if (scenario->id == id) return scenario;
  }
  throw std::out_of_range("AttackScheduler: no scenario with id " +
                          std::to_string(id));
}

double AttackScheduler::virtual_now_locked() const {
  double virtual_now = std::numeric_limits<double>::infinity();
  for (const auto& scenario : scenarios_) {
    if (scenario->status == ScenarioStatus::kRunning && !scenario->removing) {
      virtual_now = std::min(virtual_now, scenario->virtual_time);
    }
  }
  return virtual_now;
}

bool AttackScheduler::past_deadline_locked(const Scenario& scenario) const {
  if (!scenario.has_deadline) return false;
  if (scenario.status == ScenarioStatus::kFinished) {
    return scenario.missed_deadline;  // latched at finish time
  }
  return Clock::now() > scenario.deadline_at;
}

double AttackScheduler::effective_weight_locked(
    const Scenario& scenario) const {
  double weight = scenario.weight;
  if (scenario.has_deadline && Clock::now() > scenario.deadline_at) {
    weight *= config_.deadline_boost;
  }
  return weight;
}

AttackScheduler::Scenario* AttackScheduler::pick_next_locked(
    Clock::time_point now, Clock::time_point* next_eligible) {
  Scenario* best = nullptr;
  for (const auto& entry : scenarios_) {
    Scenario& scenario = *entry;
    if (scenario.status != ScenarioStatus::kRunning || scenario.in_flight ||
        scenario.removing) {
      continue;
    }
    if (scenario.rate_cap > 0.0) {
      // Lazy token refill; the bucket may be negative from the last
      // slice's debit, so eligibility is simply "back above zero".
      const double elapsed = seconds_between(scenario.last_refill, now);
      if (elapsed > 0.0) {
        scenario.tokens = std::min(
            scenario.token_capacity,
            scenario.tokens + scenario.rate_cap * elapsed);
        scenario.last_refill = now;
      }
      if (scenario.tokens <= 0.0) {
        // Skipped without burning a slice; tell the caller when this
        // bucket next crosses zero so a driver can park exactly that long.
        const Clock::time_point refill_at = after_seconds(
            now, (1.0 - scenario.tokens) / scenario.rate_cap);
        if (next_eligible != nullptr && refill_at < *next_eligible) {
          *next_eligible = refill_at;
        }
        continue;
      }
    }
    // Strict < keeps the earliest-registered scenario on ties, so the
    // schedule is a pure function of weights and completion pattern.
    if (best == nullptr || scenario.virtual_time < best->virtual_time) {
      best = &scenario;
    }
  }
  return best;
}

bool AttackScheduler::any_runnable_locked() const {
  for (const auto& scenario : scenarios_) {
    if (scenario->status == ScenarioStatus::kRunning && !scenario->removing) {
      return true;
    }
  }
  return false;
}

void AttackScheduler::note_driving_started_locked() {
  if (!timer_started_) {
    timer_.reset();
    timer_started_ = true;
  }
}

void AttackScheduler::dispatch_locked(Scenario& scenario) {
  scenario.in_flight = true;
  ++active_slices_;
  note_driving_started_locked();
  if (!scenario.started) {
    scenario.started = true;
    scenario.first_slice_at = Clock::now();
    scenario.last_slice_at = scenario.first_slice_at;
  }
}

void AttackScheduler::mark_finished_locked(Scenario& scenario) const {
  scenario.status = ScenarioStatus::kFinished;
  if (scenario.has_deadline) {
    scenario.missed_deadline = Clock::now() > scenario.deadline_at;
  }
}

void AttackScheduler::run_slice(Scenario& scenario) {
  // stats() is safe to read here: only the thread driving this slice
  // touches the session, and in_flight excludes everyone else.
  const std::size_t produced_before = scenario.session->stats().produced;
  std::size_t steps = 0;
  std::exception_ptr error;
  try {
    for (std::size_t i = 0; i < config_.slice_chunks; ++i) {
      if (!scenario.session->step()) break;
      ++steps;
    }
  } catch (...) {
    error = std::current_exception();
  }
  const std::size_t produced_delta =
      scenario.session->stats().produced - produced_before;
  {
    MutexLock lock(mu_);
    scenario.chunks_driven += steps;
    scenario.virtual_time +=
        static_cast<double>(steps) / effective_weight_locked(scenario);
    if (scenario.rate_cap > 0.0) {
      scenario.tokens -= static_cast<double>(produced_delta);
    }
    scenario.last_slice_at = Clock::now();
    scenario.snapshot = scenario.session->stats();
    if (error) {
      // A broken session (generator threw, pipeline error) cannot take
      // more slices; park it as finished and surface the error to whoever
      // is driving.
      mark_finished_locked(scenario);
      if (!first_error_) first_error_ = error;
    } else if (scenario.session->finished()) {
      mark_finished_locked(scenario);
    }
    scenario.in_flight = false;
    --active_slices_;
  }
  cv_.notify_all();
}

bool AttackScheduler::step() {
  Scenario* scenario = nullptr;
  {
    ReleasableMutexLock lock(mu_);
    for (;;) {
      while (quiesce_count_ != 0) cv_.wait(lock);
      Clock::time_point next_eligible = Clock::time_point::max();
      scenario = pick_next_locked(Clock::now(), &next_eligible);
      if (scenario != nullptr) break;
      if (next_eligible == Clock::time_point::max()) return false;
      // Everything runnable is rate-capped out: the fleet is throttled,
      // not drained, so sleep to the earliest refill and try again.
      cv_.wait_until(lock, next_eligible);
    }
    dispatch_locked(*scenario);
  }
  run_slice(*scenario);
  {
    MutexLock lock(mu_);
    if (first_error_) {
      const std::exception_ptr error = first_error_;
      first_error_ = nullptr;
      std::rethrow_exception(error);
    }
  }
  return true;
}

void AttackScheduler::driver_loop() {
  for (;;) {
    Scenario* scenario = nullptr;
    {
      ReleasableMutexLock lock(mu_);
      for (;;) {
        Clock::time_point next_eligible = Clock::time_point::max();
        if (quiesce_count_ == 0) {
          scenario = pick_next_locked(Clock::now(), &next_eligible);
        }
        if (scenario != nullptr) break;
        // Exit only when the fleet is truly drained: nothing runnable
        // (ignoring the quiesce gate — that is temporary — and rate caps,
        // which merely delay) and no slice in flight that could finish
        // and unpark more work.
        if (active_slices_ == 0 && !any_runnable_locked()) return;
        // Park instead of spinning through empty picks; add_scenario,
        // resume_scenario and slice completions notify, and a pending
        // token-bucket refill bounds the wait.
        ++parked_drivers_;
        if (next_eligible != Clock::time_point::max()) {
          cv_.wait_until(lock, next_eligible);
        } else {
          cv_.wait(lock);
        }
        --parked_drivers_;
      }
      dispatch_locked(*scenario);
    }
    run_slice(*scenario);
  }
}

void AttackScheduler::run() {
  std::size_t drivers = 0;
  {
    MutexLock lock(mu_);
    std::size_t runnable = 0;
    for (const auto& scenario : scenarios_) {
      if (scenario->status == ScenarioStatus::kRunning && !scenario->removing) {
        ++runnable;
      }
    }
    if (runnable == 0) return;  // paused-only fleets are left paused
    drivers = config_.max_concurrent != 0
                  ? config_.max_concurrent
                  : std::min(runnable,
                             std::max<std::size_t>(
                                 1, std::thread::hardware_concurrency()));
  }
  std::vector<std::thread> threads;
  threads.reserve(drivers);
  for (std::size_t i = 0; i < drivers; ++i) {
    threads.emplace_back([this] { driver_loop(); });
  }
  for (auto& thread : threads) thread.join();
  {
    MutexLock lock(mu_);
    if (first_error_) {
      const std::exception_ptr error = first_error_;
      first_error_ = nullptr;
      std::rethrow_exception(error);
    }
  }
}

bool AttackScheduler::finished() const {
  MutexLock lock(mu_);
  return active_slices_ == 0 && !any_runnable_locked();
}

std::size_t AttackScheduler::scenario_count() const {
  MutexLock lock(mu_);
  return scenarios_.size();
}

ScenarioSnapshot AttackScheduler::snapshot_locked(
    const Scenario& scenario) const {
  ScenarioSnapshot snap;
  snap.id = scenario.id;
  snap.name = scenario.name;
  snap.weight = scenario.weight;
  snap.status = scenario.status;
  snap.chunks_driven = scenario.chunks_driven;
  snap.stats = scenario.snapshot;
  snap.deadline_seconds = scenario.deadline_seconds;
  snap.past_deadline = past_deadline_locked(scenario);
  snap.rate_cap = scenario.rate_cap;
  if (scenario.started) {
    const double wall =
        seconds_between(scenario.first_slice_at, scenario.last_slice_at);
    if (wall > 0.0) {
      snap.achieved_guesses_per_second =
          static_cast<double>(scenario.snapshot.produced) / wall;
    }
  }
  return snap;
}

ScenarioSnapshot AttackScheduler::scenario(std::size_t id) const {
  MutexLock lock(mu_);
  return snapshot_locked(*find_scenario_locked(id));
}

std::vector<ScenarioSnapshot> AttackScheduler::scenarios() const {
  MutexLock lock(mu_);
  std::vector<ScenarioSnapshot> snaps;
  snaps.reserve(scenarios_.size());
  for (const auto& entry : scenarios_) {
    snaps.push_back(snapshot_locked(*entry));
  }
  return snaps;
}

void AttackScheduler::pause_scenario(std::size_t id) {
  MutexLock lock(mu_);
  const std::shared_ptr<Scenario> scenario = find_scenario_locked(id);
  if (scenario->status == ScenarioStatus::kRunning) {
    scenario->status = ScenarioStatus::kPaused;
  }
  // An in-flight slice always completes; pausing only stops new ones.
}

void AttackScheduler::resume_scenario(std::size_t id) {
  {
    MutexLock lock(mu_);
    const std::shared_ptr<Scenario> scenario = find_scenario_locked(id);
    if (scenario->status == ScenarioStatus::kPaused) {
      // Fair-queuing resume rule: a long-paused scenario's virtual clock is
      // stale-small, and left alone it would monopolize every driver until
      // it "caught up" with the fleet. Advance it to the fleet's virtual
      // now (it was paused, so it is excluded from the scan) — it resumes
      // competing for its fair share from this moment, exactly like a late
      // joiner. max() keeps a scenario *ahead* of the fleet ahead.
      const double virtual_now = virtual_now_locked();
      if (virtual_now != std::numeric_limits<double>::infinity()) {
        scenario->virtual_time =
            std::max(scenario->virtual_time, virtual_now);
      }
      scenario->status = ScenarioStatus::kRunning;
    }
  }
  cv_.notify_all();
}

RunResult AttackScheduler::remove_scenario(std::size_t id) {
  std::shared_ptr<Scenario> scenario;
  {
    ReleasableMutexLock lock(mu_);
    // The shared_ptr keeps the scenario alive across the wait even if a
    // concurrent remove_scenario(id) erases the vector entry first.
    scenario = find_scenario_locked(id);
    scenario->removing = true;  // no new slices from this point
    while (scenario->in_flight) cv_.wait(lock);
    bool erased = false;
    for (auto it = scenarios_.begin(); it != scenarios_.end(); ++it) {
      if (it->get() == scenario.get()) {
        scenarios_.erase(it);
        erased = true;
        break;
      }
    }
    if (!erased) {
      throw std::out_of_range("AttackScheduler: scenario " +
                              std::to_string(id) + " was already removed");
    }
  }
  cv_.notify_all();  // drained drivers may now be able to exit
  // The result copy is built outside mu_ — the scenario is out of the
  // vector, so no driver can reach it and the copy can take its time.
  RunResult result = scenario->session->result();
  return result;
  // `scenario` (and its session, joining any pipeline threads) is
  // destroyed here, after the lock is released.
}

RunResult AttackScheduler::result(std::size_t id) const {
  std::shared_ptr<Scenario> scenario;
  {
    ReleasableMutexLock lock(mu_);
    scenario = find_scenario_locked(id);
    while (scenario->in_flight) cv_.wait(lock);
    // Reserve the scenario so no new slice dispatches while the result is
    // copied outside the lock; remove_scenario waits on the same flag, so
    // the session cannot be torn down under the copy either.
    scenario->in_flight = true;
  }
  RunResult result = scenario->session->result();
  {
    MutexLock lock(mu_);
    scenario->in_flight = false;
  }
  cv_.notify_all();
  return result;
}

SchedulerStats AttackScheduler::aggregate() const {
  // Construct the union sketch before gating anything: an out-of-range
  // precision throws here, while the scheduler is still fully live.
  util::CardinalitySketch unionsketch(config_.unique_union_precision_bits);

  ReleasableMutexLock lock(mu_);
  // Quiesce: park slice dispatch and wait for in-flight slices to land so
  // every session is readable at a chunk boundary. Slices are chunk-sized,
  // so the stall is brief. The gate is a counter so concurrent aggregate()
  // calls compose: dispatch stays parked until the last merge finishes.
  // Nothing below may leak an exception — an unwind would leave the count
  // raised and wedge every driver forever; errors are deferred through
  // first_error_ and rethrown after the gate is released.
  ++quiesce_count_;
  while (active_slices_ != 0) cv_.wait(lock);

  SchedulerStats stats;
  stats.scenarios = scenarios_.size();
  stats.parked_drivers = parked_drivers_;
  stats.unique_union_valid = !scenarios_.empty();
  for (const auto& scenario : scenarios_) {
    switch (scenario->status) {
      case ScenarioStatus::kRunning:
        ++stats.running;
        break;
      case ScenarioStatus::kPaused:
        ++stats.paused;
        break;
      case ScenarioStatus::kFinished:
        ++stats.finished;
        break;
    }
    if (past_deadline_locked(*scenario)) ++stats.deadline_missed;
    stats.produced += scenario->snapshot.produced;
    stats.matched += scenario->snapshot.matched;
    if (stats.unique_union_valid) {
      try {
        if (!scenario->session->merge_unique_sketch(unionsketch)) {
          stats.unique_union_valid = false;  // kOff contributes nothing
        }
      } catch (const std::invalid_argument&) {
        stats.unique_union_valid = false;  // sketch precision mismatch
      } catch (...) {
        // A broken session (merge_unique_sketch surfaces stored pipeline
        // errors) cannot contribute or take more slices; park it and defer
        // the error like a failed slice would.
        stats.unique_union_valid = false;
        mark_finished_locked(*scenario);
        if (!first_error_) first_error_ = std::current_exception();
      }
    }
  }
  if (stats.unique_union_valid) stats.unique_union = unionsketch.estimate();
  stats.seconds =
      saved_seconds_ + (timer_started_ ? timer_.elapsed_seconds() : 0.0);
  stats.guesses_per_second =
      stats.seconds > 0.0
          ? static_cast<double>(stats.produced) / stats.seconds
          : 0.0;

  --quiesce_count_;
  // Take any pending error while still locked; rethrow only after the
  // gate is released so a throwing aggregate() can never wedge the fleet.
  // This is also the only surfacing path for an error raised after the
  // fleet finished (no driver will ever rethrow it).
  std::exception_ptr error;
  if (quiesce_count_ == 0 && first_error_) {
    error = first_error_;
    first_error_ = nullptr;
  }
  lock.unlock();
  cv_.notify_all();
  if (error) std::rethrow_exception(error);
  return stats;
}

// ---- freeze / thaw ---------------------------------------------------------

bool AttackScheduler::quiesced_for_save_locked() const {
  // Protocol note for the analysis (and the reader): the quiesce scan
  // below reads per-scenario in_flight reservations, which is only sound
  // while mu_ is held — asserted here so the capability is part of the
  // quiesce path itself, not just its callers.
  mu_.assert_held();
  if (active_slices_ != 0) return false;
  for (const auto& scenario : scenarios_) {
    if (scenario->in_flight) return false;
  }
  return true;
}

void AttackScheduler::save_state(std::ostream& out) {
  ReleasableMutexLock lock(mu_);
  // Quiesce through the aggregate() gate, plus the result()-copy
  // reservation: a scenario with in_flight set but no slice (a result()
  // copy in progress) is being read outside the lock, so the save must
  // wait it out too before touching any session.
  ++quiesce_count_;
  while (!quiesced_for_save_locked()) cv_.wait(lock);

  const Clock::time_point now = Clock::now();
  try {
    out.write(kStateMagic, sizeof(kStateMagic) - 1);
    io::write_u64(out, next_id_);
    io::write_f64(out, saved_seconds_ +
                           (timer_started_ ? timer_.elapsed_seconds() : 0.0));
    // Scenarios mid-removal are excluded: their remove_scenario() call has
    // already claimed their results, so thawing them back would duplicate
    // the work they report.
    std::size_t count = 0;
    for (const auto& scenario : scenarios_) {
      if (!scenario->removing) ++count;
    }
    io::write_u64(out, count);
    for (const auto& entry : scenarios_) {
      const Scenario& scenario = *entry;
      if (scenario.removing) continue;
      io::write_u64(out, scenario.id);
      io::write_string(out, scenario.name);
      io::write_f64(out, scenario.weight);
      io::write_u64(out, static_cast<std::uint64_t>(scenario.status));
      io::write_u64(out, scenario.chunks_driven);
      io::write_f64(out, scenario.virtual_time);

      // QoS ledgers. The deadline is persisted as *remaining* seconds
      // (negative once passed): deadline_at is a wall-clock instant from
      // registration, meaningless in another process. Time spent frozen
      // does not count against a deadline.
      io::write_f64(out, scenario.deadline_seconds);
      io::write_u64(out, scenario.has_deadline ? 1 : 0);
      io::write_u64(out, scenario.missed_deadline ? 1 : 0);
      io::write_f64(out, scenario.has_deadline
                             ? seconds_between(now, scenario.deadline_at)
                             : 0.0);
      io::write_f64(out, scenario.rate_cap);
      io::write_f64(out, scenario.tokens);
      io::write_u64(out, scenario.started ? 1 : 0);
      io::write_f64(out, scenario.started
                             ? seconds_between(scenario.first_slice_at,
                                               scenario.last_slice_at)
                             : 0.0);

      // Per-scenario engine config, so load_state can reconstruct the
      // session before thawing its stream (which re-validates the
      // metric-relevant fields against this echo).
      const SessionConfig& session = scenario.session->config();
      io::write_u64(out, session.budget);
      io::write_u64(out, session.chunk_size);
      io::write_u64(out, session.non_matched_samples);
      io::write_u64(out, static_cast<std::uint64_t>(session.unique_tracking));
      io::write_u64(out, session.unique_shards);
      io::write_u64(out, session.sketch_precision_bits);
      io::write_u64(out, session.pipeline_depth);
      io::write_u64(out, session.log_progress ? 1 : 0);
      io::write_u64(out, session.checkpoints.size());
      for (const std::size_t cp : session.checkpoints) io::write_u64(out, cp);

      entry->session->save_state(out);
    }
    out.write(kStateEndMagic, sizeof(kStateEndMagic) - 1);
    if (!out) throw std::runtime_error("AttackScheduler state write failed");
  } catch (...) {
    --quiesce_count_;
    lock.unlock();
    cv_.notify_all();
    throw;
  }
  --quiesce_count_;
  lock.unlock();
  cv_.notify_all();
}

void AttackScheduler::load_state(std::istream& in,
                                 const ScenarioResolver& resolver) {
  if (!resolver) {
    throw std::invalid_argument(
        "AttackScheduler::load_state requires a scenario resolver");
  }
  ReleasableMutexLock lock(mu_);
  if (!scenarios_.empty() || next_id_ != 0 || timer_started_) {
    throw std::logic_error(
        "AttackScheduler::load_state must run on a freshly constructed "
        "scheduler");
  }

  io::expect_magic(in, kStateMagic, "AttackScheduler");
  const std::uint64_t next_id = io::read_u64(in);
  const double saved_seconds = io::read_f64(in);
  const std::uint64_t count = io::read_length(in, "scenario count");
  const Clock::time_point now = Clock::now();

  // Everything is built into local state and committed only after the end
  // magic validates, so a corrupt stream leaves the scheduler unchanged.
  std::vector<std::shared_ptr<Scenario>> thawed;
  thawed.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    auto scenario = std::make_shared<Scenario>();
    scenario->id = io::read_u64(in);
    scenario->name = io::read_string(in);
    scenario->weight = io::read_f64(in);
    const std::uint64_t status = io::read_u64(in);
    if (status > static_cast<std::uint64_t>(ScenarioStatus::kFinished)) {
      throw std::runtime_error(
          "AttackScheduler state is corrupt: scenario status " +
          std::to_string(status));
    }
    scenario->status = static_cast<ScenarioStatus>(status);
    scenario->chunks_driven = io::read_u64(in);
    scenario->virtual_time = io::read_f64(in);
    if (!(scenario->weight > 0.0)) {
      throw std::runtime_error(
          "AttackScheduler state is corrupt: scenario weight must be > 0");
    }

    scenario->deadline_seconds = io::read_f64(in);
    scenario->has_deadline = io::read_u64(in) != 0;
    scenario->missed_deadline = io::read_u64(in) != 0;
    const double deadline_remaining = io::read_f64(in);
    if (scenario->has_deadline) {
      // Re-anchor: remaining time at save is remaining time now. A
      // scenario saved past its deadline (negative remaining) thaws past
      // it — effective-weight escalation engages on its very first pick,
      // and mark_finished_locked latches the miss exactly as if the fleet
      // had never frozen.
      scenario->deadline_at = after_seconds(now, deadline_remaining);
    }
    scenario->rate_cap = io::read_f64(in);
    const double tokens = io::read_f64(in);
    if (scenario->rate_cap > 0.0) {
      scenario->token_capacity =
          scenario->rate_cap * config_.rate_cap_burst_seconds;
      // Capacity follows the live scheduler's burst config; the saved
      // level is clamped into it so a thaw can never grant a burst the
      // live config would not.
      scenario->tokens = std::min(tokens, scenario->token_capacity);
      scenario->last_refill = now;
    }
    scenario->started = io::read_u64(in) != 0;
    const double active_window = io::read_f64(in);
    if (scenario->started) {
      // Preserve the achieved-rate wall window: it restarts spanning the
      // same width it had at save and grows from here.
      scenario->first_slice_at = after_seconds(now, -active_window);
      scenario->last_slice_at = now;
    }

    ScenarioThawInfo info;
    info.index = static_cast<std::size_t>(i);
    info.id = scenario->id;
    info.session.budget = io::read_u64(in);
    info.session.chunk_size = io::read_u64(in);
    info.session.non_matched_samples = io::read_u64(in);
    const std::uint64_t tracking = io::read_u64(in);
    if (tracking > static_cast<std::uint64_t>(UniqueTracking::kSketch)) {
      throw std::runtime_error(
          "AttackScheduler state is corrupt: unique-tracking mode " +
          std::to_string(tracking));
    }
    info.session.unique_tracking = static_cast<UniqueTracking>(tracking);
    info.session.unique_shards = io::read_u64(in);
    info.session.sketch_precision_bits =
        static_cast<unsigned>(io::read_u64(in));
    info.session.pipeline_depth = io::read_u64(in);
    info.session.log_progress = io::read_u64(in) != 0;
    const std::uint64_t checkpoint_count =
        io::read_length(in, "checkpoint count");
    info.session.checkpoints.reserve(checkpoint_count);
    for (std::uint64_t c = 0; c < checkpoint_count; ++c) {
      info.session.checkpoints.push_back(io::read_u64(in));
    }
    info.session.pool = config_.pool;  // the fleet budget, as add_scenario
    info.name = scenario->name;

    ScenarioBinding binding = resolver(info);
    scenario->session = std::make_unique<AttackSession>(
        binding.generator, std::move(binding.matcher), info.session);
    // Thaws bookkeeping, tracker, pending pipeline chunks and the
    // generator stream; validates the run shape against the config echo
    // and the generator name against the saved one.
    scenario->session->load_state(in);
    scenario->snapshot = scenario->session->stats();
    thawed.push_back(std::move(scenario));
  }
  io::expect_magic(in, kStateEndMagic, "AttackScheduler trailer");

  scenarios_ = std::move(thawed);
  next_id_ = next_id;
  saved_seconds_ = saved_seconds;
  lock.unlock();
  cv_.notify_all();  // parked drivers (if any) may now have work
}

}  // namespace passflow::guessing
