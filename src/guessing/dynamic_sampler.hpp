// Dynamic Sampling with Penalization (Algorithm 1, Eq. 14).
//
// The latent prior starts as N(0, prior_sigma^2 I). Once more than alpha
// matches have been observed, sampling switches to a mixture of Gaussians
// centered on the latent points of matched passwords:
//
//   p(z|M) = sum_i phi(Mh[i]) N(z_i, sigma_i)                      (Eq. 14)
//
// phi is the step penalization of §IV-B: a component contributes weight 1
// while it has conditioned the prior for fewer than gamma sampling
// iterations, and 0 afterwards ("iteration" = one generate() call, i.e. one
// pass of Algorithm 1's loop body at batch granularity). Aged-out components
// stop stagnating the search (Fig. 5); when no component is active the
// sampler falls back to the base prior until fresh matches arrive.
//
// Table I's parameter schedule (alpha, sigma, gamma per guess budget) is
// available via table1_parameters().
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>
#include <vector>

#include "data/encoder.hpp"
#include "flow/flow_model.hpp"
#include "guessing/gaussian_smoothing.hpp"
#include "guessing/generator.hpp"
#include "util/thread_pool.hpp"

namespace passflow::guessing {

// Penalization function family (§IV-B implements the step function; §VII
// lists "the effects of different penalization functions" as future work —
// the extra kinds below implement that extension).
enum class PhiKind {
  kStep,         // phi = 1 while age < gamma, else 0 (paper, §IV-B)
  kLinear,       // phi = max(0, 1 - age/gamma)
  kExponential,  // phi = exp(-age/gamma)
  kUniform,      // phi = 1 always (Fig. 5's "without phi" baseline)
};

const char* phi_kind_name(PhiKind kind);
PhiKind parse_phi_kind(const std::string& name);

struct DynamicSamplerConfig {
  std::size_t alpha = 5;      // matches required before DS activates
  double sigma = 0.12;        // stddev of each mixture component
  std::size_t gamma = 2;      // phi threshold in iterations
  double prior_sigma = 1.0;   // base prior stddev
  std::size_t batch_size = 2048;
  GaussianSmoothingConfig smoothing;  // enabled => PassFlow-Dynamic+GS
  bool use_phi = true;        // false reproduces Fig. 5's "without phi"
  PhiKind phi_kind = PhiKind::kStep;
  std::uint64_t seed = 13;
  // Non-owning worker pool for the inverse + decode hot path. Mixture
  // sampling and smoothing stay on the calling thread so output is bitwise
  // identical with or without a pool. Null = fully serial.
  util::ThreadPool* pool = nullptr;
};

// The alpha/sigma/gamma schedule of Table I for a given guess budget.
DynamicSamplerConfig table1_parameters(std::size_t guess_budget);

class DynamicSampler : public GuessGenerator {
 public:
  DynamicSampler(const flow::FlowModel& model, const data::Encoder& encoder,
                 DynamicSamplerConfig config = {});

  void generate(std::size_t n, std::vector<std::string>& out) override;
  void on_match(std::size_t index_in_batch,
                const std::string& password) override;
  // Algorithm 1 conditions the prior on matches, so the harness must not
  // overlap generation with matching for this sampler.
  bool uses_match_feedback() const override { return true; }
  std::string name() const override;

  // Full mixture state (RNG, components with ages, last-batch latents), so
  // a resumed Algorithm-1 run continues its conditioned prior exactly.
  bool supports_state_serialization() const override { return true; }
  void save_state(std::ostream& out) const override;
  void load_state(std::istream& in) override;

  // Introspection for tests and the Fig. 5 bench.
  std::size_t match_count() const { return components_.size(); }
  std::size_t active_component_count() const;
  bool dynamic_active() const;

 private:
  struct Component {
    std::vector<float> latent;
    std::size_t age = 0;  // iterations spent conditioning the prior
  };

  double phi(const Component& c) const;

  const flow::FlowModel* model_;
  const data::Encoder* encoder_;
  DynamicSamplerConfig config_;
  util::Rng rng_;

  std::deque<Component> components_;  // M with Mh folded in as `age`
  nn::Matrix last_batch_latents_;     // maps on_match index -> latent
};

}  // namespace passflow::guessing
