// Membership oracles over the (deduplicated) test set.
//
// Mirrors the paper's evaluation: a guess "matches" iff it equals a password
// in the cleaned RockYou test partition (§IV-D, §V-A). `Matcher` is the
// abstract interface the attack engine probes; implementations trade memory
// layout for scale:
//
//   - HashSetMatcher: the classic single in-memory hash set (seed behavior).
//   - ShardedMatcher: K independent hash-set shards keyed by a stable hash
//     of the password, so one huge test set can be matched shard-parallel
//     across the worker pool (and, in a distributed deployment, the shards
//     can live on different machines). Answers are identical to the
//     unsharded matcher for every input.
//
// All implementations must be safe for concurrent read-only use: the
// pipelined AttackSession probes the matcher from its producer thread while
// other sessions may share the same instance.
#pragma once

#include <cstddef>
#include <cstdint>
#include <future>
#include <string>
#include <unordered_set>
#include <vector>

#include "util/thread_pool.hpp"

namespace passflow::guessing {

namespace detail {

// The shard-parallel bulk-membership plan shared by every sharded matcher
// (in-memory and disk-backed): hash each key once, then submit one task
// per shard; a task writes only the batch indices its shard owns, so
// writes never collide and no item is hashed K times. submit() + wait_all
// rather than a second parallel_for so shard scans interleave with
// whatever else is on the pool (other sessions' matching, tracker folds)
// at task granularity, and the wait lends the calling thread back to the
// pool. probe_fn(shard, hash, key) answers membership within one shard.
template <typename HashFn, typename ProbeFn>
void shard_parallel_contains_batch(std::size_t shard_count,
                                   const std::vector<std::string>& batch,
                                   util::ThreadPool& pool, HashFn&& hash_fn,
                                   ProbeFn&& probe_fn,
                                   std::vector<char>& out) {
  std::vector<std::uint64_t> hashes(batch.size());
  pool.parallel_for(batch.size(),
                    [&](std::size_t i) { hashes[i] = hash_fn(batch[i]); });
  std::vector<std::future<void>> scans;
  scans.reserve(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) {
    scans.push_back(pool.submit([&, s] {
      for (std::size_t i = 0; i < batch.size(); ++i) {
        if (hashes[i] % shard_count == s &&
            probe_fn(s, hashes[i], batch[i])) {
          out[i] = 1;
        }
      }
    }));
  }
  pool.wait_all(scans);
}

}  // namespace detail

class Matcher {
 public:
  virtual ~Matcher() = default;

  virtual bool contains(const std::string& password) const = 0;

  // Number of distinct test-set passwords (the denominator of Table II's
  // matched %).
  virtual std::size_t test_set_size() const = 0;

  virtual std::string name() const = 0;

  // Bulk membership: fills out[i] = contains(batch[i]) for the whole
  // batch. `out` is assigned/overwritten. The base implementation probes
  // serially or splits the batch across `pool` when the batch is large
  // enough to be worth it; ShardedMatcher overrides with a shard-parallel
  // plan. Must be callable concurrently from multiple threads.
  virtual void contains_batch(const std::vector<std::string>& batch,
                              util::ThreadPool* pool,
                              std::vector<char>& out) const;

 protected:
  // Below this batch size the hash probes are too cheap to farm out.
  static constexpr std::size_t kParallelBatchThreshold = 1024;
};

// Single hash set over the whole test set — today's default, fastest while
// the test set fits comfortably in memory on one node.
class HashSetMatcher : public Matcher {
 public:
  explicit HashSetMatcher(const std::vector<std::string>& test_set);

  bool contains(const std::string& password) const override {
    return test_set_.count(password) > 0;
  }
  std::size_t test_set_size() const override { return test_set_.size(); }
  std::string name() const override { return "hashset"; }

 private:
  std::unordered_set<std::string> test_set_;
};

// K hash-set shards; a password lives in shard util::hash64(p) % K. Probe
// answers are identical to HashSetMatcher; contains_batch matches the
// shards in parallel across the pool (each worker scans the batch for the
// passwords its shard owns).
class ShardedMatcher : public Matcher {
 public:
  ShardedMatcher(const std::vector<std::string>& test_set,
                 std::size_t num_shards);

  bool contains(const std::string& password) const override;
  std::size_t test_set_size() const override { return size_; }
  std::string name() const override;
  void contains_batch(const std::vector<std::string>& batch,
                      util::ThreadPool* pool,
                      std::vector<char>& out) const override;

  std::size_t shard_count() const { return shards_.size(); }
  std::size_t shard_size(std::size_t shard) const {
    return shards_[shard].size();
  }

 private:
  std::size_t shard_of(const std::string& password) const;

  std::vector<std::unordered_set<std::string>> shards_;
  std::size_t size_ = 0;
};

}  // namespace passflow::guessing
