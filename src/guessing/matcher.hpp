// Membership oracles over the (deduplicated) test set.
//
// Mirrors the paper's evaluation: a guess "matches" iff it equals a password
// in the cleaned RockYou test partition (§IV-D, §V-A). `Matcher` is the
// abstract interface the attack engine probes; implementations trade memory
// layout for scale:
//
//   - HashSetMatcher: the classic single in-memory hash set (seed behavior).
//   - ShardedMatcher: K independent hash-set shards keyed by a stable hash
//     of the password, so one huge test set can be matched shard-parallel
//     across the worker pool (and, in a distributed deployment, the shards
//     can live on different machines). Answers are identical to the
//     unsharded matcher for every input.
//
// All implementations must be safe for concurrent read-only use: the
// pipelined AttackSession probes the matcher from its producer thread while
// other sessions may share the same instance.
#pragma once

#include <cstddef>
#include <string>
#include <unordered_set>
#include <vector>

#include "util/thread_pool.hpp"

namespace passflow::guessing {

class Matcher {
 public:
  virtual ~Matcher() = default;

  virtual bool contains(const std::string& password) const = 0;

  // Number of distinct test-set passwords (the denominator of Table II's
  // matched %).
  virtual std::size_t test_set_size() const = 0;

  virtual std::string name() const = 0;

  // Bulk membership: fills out[i] = contains(batch[i]) for the whole
  // batch. `out` is assigned/overwritten. The base implementation probes
  // serially or splits the batch across `pool` when the batch is large
  // enough to be worth it; ShardedMatcher overrides with a shard-parallel
  // plan. Must be callable concurrently from multiple threads.
  virtual void contains_batch(const std::vector<std::string>& batch,
                              util::ThreadPool* pool,
                              std::vector<char>& out) const;

 protected:
  // Below this batch size the hash probes are too cheap to farm out.
  static constexpr std::size_t kParallelBatchThreshold = 1024;
};

// Single hash set over the whole test set — today's default, fastest while
// the test set fits comfortably in memory on one node.
class HashSetMatcher : public Matcher {
 public:
  explicit HashSetMatcher(const std::vector<std::string>& test_set);

  bool contains(const std::string& password) const override {
    return test_set_.count(password) > 0;
  }
  std::size_t test_set_size() const override { return test_set_.size(); }
  std::string name() const override { return "hashset"; }

 private:
  std::unordered_set<std::string> test_set_;
};

// K hash-set shards; a password lives in shard util::hash64(p) % K. Probe
// answers are identical to HashSetMatcher; contains_batch matches the
// shards in parallel across the pool (each worker scans the batch for the
// passwords its shard owns).
class ShardedMatcher : public Matcher {
 public:
  ShardedMatcher(const std::vector<std::string>& test_set,
                 std::size_t num_shards);

  bool contains(const std::string& password) const override;
  std::size_t test_set_size() const override { return size_; }
  std::string name() const override;
  void contains_batch(const std::vector<std::string>& batch,
                      util::ThreadPool* pool,
                      std::vector<char>& out) const override;

  std::size_t shard_count() const { return shards_.size(); }
  std::size_t shard_size(std::size_t shard) const {
    return shards_[shard].size();
  }

 private:
  std::size_t shard_of(const std::string& password) const;

  std::vector<std::unordered_set<std::string>> shards_;
  std::size_t size_ = 0;
};

}  // namespace passflow::guessing
