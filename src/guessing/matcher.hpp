// Membership oracle over the (deduplicated) test set.
//
// Mirrors the paper's evaluation: a guess "matches" iff it equals a password
// in the cleaned RockYou test partition (§IV-D, §V-A).
#pragma once

#include <string>
#include <unordered_set>
#include <vector>

namespace passflow::guessing {

class Matcher {
 public:
  explicit Matcher(const std::vector<std::string>& test_set);

  bool contains(const std::string& password) const {
    return test_set_.count(password) > 0;
  }

  std::size_t test_set_size() const { return test_set_.size(); }

 private:
  std::unordered_set<std::string> test_set_;
};

}  // namespace passflow::guessing
