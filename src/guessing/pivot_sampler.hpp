// Bounded sampling around a pivot password (§V-B, Table V).
//
// Samples latent points in the sigma-neighborhood of the latent image of a
// pivot string and decodes them — "exploration of specific subspaces of the
// latent space". Table V reports the first 10 unique samples around
// "jimmy91" for sigma in {0.05, 0.08, 0.10, 0.15}.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "data/encoder.hpp"
#include "flow/flow_model.hpp"
#include "util/rng.hpp"

namespace passflow::guessing {

class PivotSampler {
 public:
  PivotSampler(const flow::FlowModel& model, const data::Encoder& encoder,
               const std::string& pivot);

  // First `count` unique decoded passwords from N(z_pivot, sigma^2 I).
  // `max_attempts` bounds the search when sigma is tiny and nearly all
  // samples collide.
  std::vector<std::string> sample_unique(std::size_t count, double sigma,
                                         util::Rng& rng,
                                         std::size_t max_attempts = 1 << 20) const;

  const std::vector<float>& pivot_latent() const { return pivot_latent_; }

 private:
  const flow::FlowModel* model_;
  const data::Encoder* encoder_;
  std::vector<float> pivot_latent_;
};

}  // namespace passflow::guessing
