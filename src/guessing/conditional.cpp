#include "guessing/conditional.hpp"

#include <algorithm>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

namespace passflow::guessing {

ConditionalGuesser::ConditionalGuesser(const flow::FlowModel& model,
                                       const data::Encoder& encoder,
                                       ConditionalConfig config)
    : model_(&model), encoder_(&encoder), config_(config), rng_(config.seed) {}

bool ConditionalGuesser::matches_pattern(const std::string& candidate,
                                         const std::string& pattern) const {
  if (candidate.size() != pattern.size()) return false;
  for (std::size_t i = 0; i < pattern.size(); ++i) {
    if (pattern[i] != config_.wildcard && candidate[i] != pattern[i]) {
      return false;
    }
  }
  return true;
}

std::vector<ScoredGuess> ConditionalGuesser::complete(
    const std::string& pattern, std::size_t count) {
  const std::size_t dim = encoder_->dim();
  if (pattern.empty() || pattern.size() > dim) {
    throw std::invalid_argument("pattern length out of range: " + pattern);
  }
  const auto& alphabet = encoder_->alphabet();
  for (char c : pattern) {
    if (c != config_.wildcard && !alphabet.contains(c)) {
      throw std::invalid_argument("pattern character outside alphabet");
    }
  }

  const float bin = encoder_->bin_width();
  // Feature values for the pinned positions (bin centers), and PAD for the
  // tail beyond the pattern length.
  std::vector<float> pinned(dim, 0.5f * bin);  // PAD center by default
  std::vector<bool> is_pinned(dim, true);
  for (std::size_t i = 0; i < pattern.size(); ++i) {
    if (pattern[i] == config_.wildcard) {
      is_pinned[i] = false;
    } else {
      const auto code = alphabet.code_of(pattern[i]);
      pinned[i] = (static_cast<float>(*code) + 0.5f) * bin;
    }
  }

  std::unordered_map<std::string, double> best;  // password -> log prob
  const std::size_t batch = config_.batch_size;

  for (std::size_t round = 0; round < config_.rounds; ++round) {
    // Seed candidates: pinned positions at their bin centers (with
    // dequantization noise), wildcards uniform over non-PAD symbols.
    nn::Matrix x(batch, dim);
    for (std::size_t r = 0; r < batch; ++r) {
      float* row = x.row(r);
      for (std::size_t d = 0; d < dim; ++d) {
        if (is_pinned[d]) {
          row[d] = pinned[d] +
                   (static_cast<float>(rng_.uniform()) - 0.5f) * bin * 0.9f;
        } else {
          // Uniform over codes 1..size-1 (exclude PAD: wildcards stand for
          // a real character).
          const auto code = 1 + rng_.uniform_index(alphabet.size() - 1);
          row[d] = (static_cast<float>(code) + static_cast<float>(
                        rng_.uniform())) * bin;
        }
      }
    }

    // Latent perturbation: exploit smoothness to move candidates toward
    // high-density completions.
    nn::Matrix z = model_->forward_inference(x);
    for (std::size_t i = 0; i < z.size(); ++i) {
      z.data()[i] += static_cast<float>(
          rng_.normal(0.0, config_.latent_sigma));
    }
    nn::Matrix candidate = model_->inverse(z);

    // Projection: restore the pinned coordinates exactly.
    for (std::size_t r = 0; r < batch; ++r) {
      float* row = candidate.row(r);
      for (std::size_t d = 0; d < dim; ++d) {
        if (is_pinned[d]) row[d] = pinned[d];
      }
    }

    const auto decoded = encoder_->decode_batch(candidate);
    std::vector<std::string> valid;
    std::vector<std::size_t> valid_rows;
    for (std::size_t r = 0; r < decoded.size(); ++r) {
      if (matches_pattern(decoded[r], pattern) && !best.count(decoded[r])) {
        valid.push_back(decoded[r]);
        valid_rows.push_back(r);
      }
    }
    if (valid.empty()) continue;
    const auto log_probs =
        model_->log_prob(encoder_->encode_batch(valid));
    for (std::size_t i = 0; i < valid.size(); ++i) {
      auto [it, inserted] = best.emplace(valid[i], log_probs[i]);
      if (!inserted) it->second = std::max(it->second, log_probs[i]);
    }
  }

  std::vector<ScoredGuess> out;
  out.reserve(best.size());
  for (const auto& [password, log_prob] : best) {
    out.push_back({password, log_prob});
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.log_prob > b.log_prob;
  });
  if (out.size() > count) out.resize(count);
  return out;
}

}  // namespace passflow::guessing
