#include "guessing/metrics.hpp"

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace passflow::guessing {

const Checkpoint& RunResult::at(std::size_t guesses) const {
  for (const auto& cp : checkpoints) {
    if (cp.guesses == guesses) return cp;
  }
  throw std::out_of_range("no checkpoint at " + std::to_string(guesses));
}

std::vector<std::size_t> power_of_ten_checkpoints(std::size_t budget) {
  std::vector<std::size_t> points;
  for (std::size_t p = 10; p < budget && p >= 10; p *= 10) {
    points.push_back(p);
  }
  if (points.empty() || points.back() != budget) points.push_back(budget);
  return points;
}

}  // namespace passflow::guessing
