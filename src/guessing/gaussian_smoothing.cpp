#include "guessing/gaussian_smoothing.hpp"

#include <cstddef>

namespace passflow::guessing {

void apply_gaussian_smoothing(nn::Matrix& x, double sigma_bins,
                              float bin_width, util::Rng& rng) {
  const double sigma = sigma_bins * static_cast<double>(bin_width);
  if (sigma <= 0.0) return;
  float* data = x.data();
  for (std::size_t i = 0; i < x.size(); ++i) {
    data[i] += static_cast<float>(rng.normal(0.0, sigma));
  }
}

}  // namespace passflow::guessing
