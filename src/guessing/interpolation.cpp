#include "guessing/interpolation.hpp"

#include <algorithm>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

namespace passflow::guessing {

std::vector<float> latent_of(const flow::FlowModel& model,
                             const data::Encoder& encoder,
                             const std::string& password) {
  nn::Matrix x(1, encoder.dim());
  const auto features = encoder.encode(password);
  std::copy(features.begin(), features.end(), x.row(0));
  const nn::Matrix z = model.forward_inference(x);
  return std::vector<float>(z.row(0), z.row(0) + z.cols());
}

std::vector<std::string> interpolate(const flow::FlowModel& model,
                                     const data::Encoder& encoder,
                                     const std::string& start,
                                     const std::string& target,
                                     std::size_t steps) {
  if (steps == 0) throw std::invalid_argument("steps must be > 0");
  const auto z1 = latent_of(model, encoder, start);
  const auto z2 = latent_of(model, encoder, target);

  // delta = (z2 - z1) / steps; intermediate j is z1 + delta * j.
  nn::Matrix points(steps + 1, encoder.dim());
  for (std::size_t j = 0; j <= steps; ++j) {
    float* row = points.row(j);
    const float frac = static_cast<float>(j) / static_cast<float>(steps);
    for (std::size_t d = 0; d < encoder.dim(); ++d) {
      row[d] = z1[d] + (z2[d] - z1[d]) * frac;
    }
  }
  const nn::Matrix x = model.inverse(points);
  return encoder.decode_batch(x);
}

}  // namespace passflow::guessing
