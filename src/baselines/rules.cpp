#include "baselines/rules.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <istream>
#include <ostream>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>
#include "util/serial_io.hpp"

namespace passflow::baselines {

ManglingRule rule_identity() {
  return {":", [](const std::string& word) { return word; }};
}

ManglingRule rule_capitalize() {
  return {"c", [](const std::string& word) {
            std::string out = word;
            if (!out.empty()) {
              out[0] = static_cast<char>(
                  std::toupper(static_cast<unsigned char>(out[0])));
            }
            return out;
          }};
}

ManglingRule rule_uppercase() {
  return {"u", [](const std::string& word) {
            std::string out = word;
            for (char& c : out) {
              c = static_cast<char>(
                  std::toupper(static_cast<unsigned char>(c)));
            }
            return out;
          }};
}

ManglingRule rule_reverse() {
  return {"r", [](const std::string& word) {
            return std::string(word.rbegin(), word.rend());
          }};
}

ManglingRule rule_duplicate() {
  return {"d", [](const std::string& word) { return word + word; }};
}

ManglingRule rule_leet() {
  return {"leet", [](const std::string& word) {
            std::string out = word;
            for (char& c : out) {
              switch (c) {
                case 'a': c = '4'; break;
                case 'e': c = '3'; break;
                case 'i': c = '1'; break;
                case 'o': c = '0'; break;
                case 's': c = '5'; break;
                default: break;
              }
            }
            return out;
          }};
}

ManglingRule rule_append(const std::string& suffix) {
  return {"$" + suffix,
          [suffix](const std::string& word) { return word + suffix; }};
}

ManglingRule rule_prepend(const std::string& prefix) {
  return {"^" + prefix,
          [prefix](const std::string& word) { return prefix + word; }};
}

ManglingRule rule_truncate(std::size_t length) {
  return {"'" + std::to_string(length),
          [length](const std::string& word) {
            return word.size() > length ? word.substr(0, length) : word;
          }};
}

ManglingRule rule_compose(std::string name, ManglingRule first,
                          ManglingRule second) {
  return {std::move(name),
          [first = std::move(first.apply), second = std::move(second.apply)](
              const std::string& word) { return second(first(word)); }};
}

std::vector<ManglingRule> default_ruleset() {
  std::vector<ManglingRule> rules;
  rules.push_back(rule_identity());
  for (const char* suffix : {"1", "123", "12", "2", "!", "7", "69", "13",
                             "11", "22", "01", "123456", "321", "00"}) {
    rules.push_back(rule_append(suffix));
  }
  for (int year = 1985; year <= 2012; ++year) {
    rules.push_back(rule_append(std::to_string(year)));
    char two_digit[8];
    std::snprintf(two_digit, sizeof(two_digit), "%02d", year % 100);
    rules.push_back(rule_append(two_digit));
  }
  rules.push_back(rule_capitalize());
  rules.push_back(rule_compose("c$1", rule_capitalize(), rule_append("1")));
  rules.push_back(rule_compose("c$!", rule_capitalize(), rule_append("!")));
  rules.push_back(rule_leet());
  rules.push_back(rule_compose("leet$1", rule_leet(), rule_append("1")));
  rules.push_back(rule_reverse());
  rules.push_back(rule_duplicate());
  rules.push_back(rule_prepend("1"));
  rules.push_back(rule_uppercase());
  return rules;
}

RuleEngine::RuleEngine(std::vector<std::string> wordlist,
                       std::vector<ManglingRule> rules,
                       std::size_t max_length)
    : wordlist_(std::move(wordlist)),
      rules_(std::move(rules)),
      max_length_(max_length) {}

void RuleEngine::generate(std::size_t n, std::vector<std::string>& out) {
  out.reserve(out.size() + n);
  for (std::size_t i = 0; i < n; ++i) {
    if (cursor_ >= capacity()) {
      out.push_back("");  // exhausted: unmatchable filler keeps budgets exact
      continue;
    }
    const std::size_t rule_index = cursor_ / wordlist_.size();
    const std::size_t word_index = cursor_ % wordlist_.size();
    ++cursor_;
    std::string candidate =
        rules_[rule_index].apply(wordlist_[word_index]);
    if (candidate.size() > max_length_) candidate.resize(max_length_);
    out.push_back(std::move(candidate));
  }
}

std::vector<std::string> wordlist_from_corpus(
    const std::vector<std::string>& corpus, std::size_t max_words) {
  std::unordered_map<std::string, std::size_t> counts;
  for (const std::string& password : corpus) ++counts[password];
  std::vector<std::pair<std::string, std::size_t>> ranked(counts.begin(),
                                                          counts.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;  // deterministic tie-break
  });
  std::vector<std::string> wordlist;
  wordlist.reserve(std::min(max_words, ranked.size()));
  for (const auto& [word, _] : ranked) {
    if (wordlist.size() >= max_words) break;
    wordlist.push_back(word);
  }
  return wordlist;
}


void RuleEngine::save_state(std::ostream& out) const {
  util::io::write_u64(out, cursor_);
}

void RuleEngine::load_state(std::istream& in) {
  cursor_ = util::io::read_u64(in);
}

}  // namespace passflow::baselines
