// Context Wasserstein Autoencoder baseline (Pasquini et al. [33], §VI-C).
//
// Encoder/decoder MLPs over the same normalized password features as the
// flow. Training follows the paper's description:
//   * context denoising: each input character is dropped (replaced by PAD)
//     with probability epsilon/|x|, and the decoder must reconstruct the
//     original password from the remaining context;
//   * WAE-MMD regularization: an inverse-multiquadratic-kernel MMD penalty
//     pulls the aggregate posterior toward the N(0, I) latent prior, which
//     is what makes latent sampling produce realistic passwords.
// Unlike the flow, the latent dimensionality is a free parameter (the paper
// uses 128 for 10-character passwords) — the repo default keeps that ratio.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "data/encoder.hpp"
#include "guessing/generator.hpp"
#include "nn/adam.hpp"
#include "nn/mlp.hpp"

namespace passflow::baselines {

struct CwaeConfig {
  std::size_t latent_dim = 64;
  std::vector<std::size_t> encoder_hidden = {256, 256};
  std::vector<std::size_t> decoder_hidden = {256, 256};
  double epsilon = 2.0;          // expected dropped characters per password
  double mmd_weight = 10.0;      // lambda on the MMD penalty
  double learning_rate = 1e-3;
  std::size_t batch_size = 256;
  std::size_t epochs = 10;
  std::uint64_t seed = 23;
};

class Cwae {
 public:
  Cwae(const data::Encoder& encoder, CwaeConfig config, util::Rng& rng);

  // Trains on raw password strings; returns final epoch training loss.
  double train(const std::vector<std::string>& passwords);

  // Decodes latent points into feature vectors.
  nn::Matrix decode_latent(const nn::Matrix& z);

  // Encodes features into latent space (used by latent-analysis tests).
  nn::Matrix encode_features(const nn::Matrix& x);

  const CwaeConfig& config() const { return config_; }
  std::size_t parameter_count();

 private:
  double train_batch(const nn::Matrix& noisy, const nn::Matrix& clean,
                     util::Rng& rng);

  const data::Encoder* encoder_;
  CwaeConfig config_;
  nn::Mlp encoder_net_;
  nn::Mlp decoder_net_;
  std::unique_ptr<nn::Adam> optimizer_;
};

// Latent-prior sampler exposing the CWAE as a GuessGenerator for the
// Tables II/III harness.
class CwaeSampler : public guessing::GuessGenerator {
 public:
  CwaeSampler(Cwae& model, const data::Encoder& encoder,
              std::uint64_t seed = 29);

  void generate(std::size_t n, std::vector<std::string>& out) override;
  std::string name() const override { return "CWAE"; }

  bool supports_state_serialization() const override { return true; }
  void save_state(std::ostream& out) const override;
  void load_state(std::istream& in) override;

 private:
  Cwae* model_;
  const data::Encoder* encoder_;
  util::Rng rng_;
};

// Inverse multiquadratic kernel MMD^2 between two sample sets, plus the
// gradient with respect to the first set. Exposed for unit testing.
double imq_mmd_with_grad(const nn::Matrix& z, const nn::Matrix& prior,
                         nn::Matrix& grad_z, double scale = 1.0);

}  // namespace passflow::baselines
