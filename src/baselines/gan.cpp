#include "baselines/gan.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <istream>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "nn/ops.hpp"
#include "util/logging.hpp"
#include "util/serial_io.hpp"

namespace passflow::baselines {

namespace {
// Numerically stable binary-cross-entropy-with-logits pieces.
double softplus(double x) {
  return x > 0.0 ? x + std::log1p(std::exp(-x)) : std::log1p(std::exp(x));
}
double sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }
}  // namespace

GanConfig passgan_config() {
  GanConfig config;
  config.generator_hidden = {128};
  config.discriminator_hidden = {128};
  config.smoothing_noise = 0.0;
  config.label = "PassGAN";
  config.seed = 41;
  return config;
}

GanConfig pasquini_gan_config() {
  GanConfig config;
  config.generator_hidden = {256, 256, 256};
  config.discriminator_hidden = {256, 256};
  config.smoothing_noise = 0.02;
  config.label = "GAN-Pasquini";
  config.seed = 43;
  return config;
}

Gan::Gan(const data::Encoder& encoder, GanConfig config, util::Rng& rng)
    : encoder_(&encoder),
      config_(config),
      generator_(config.noise_dim, config.generator_hidden, encoder.dim(),
                 rng, nn::ActKind::kRelu, /*has_final_act=*/true,
                 nn::ActKind::kSigmoid, config.label + ".gen"),
      discriminator_(encoder.dim(), config.discriminator_hidden, 1, rng,
                     nn::ActKind::kLeakyRelu, /*has_final_act=*/false,
                     nn::ActKind::kTanh, config.label + ".disc") {
  nn::AdamConfig g_adam;
  g_adam.learning_rate = config_.learning_rate;
  g_adam.beta1 = 0.5;  // standard GAN setting
  g_adam.clip_norm = 5.0;
  g_optimizer_ = std::make_unique<nn::Adam>(generator_.parameters(), g_adam);

  nn::AdamConfig d_adam = g_adam;
  d_adam.weight_decay = config_.discriminator_weight_decay;
  d_optimizer_ =
      std::make_unique<nn::Adam>(discriminator_.parameters(), d_adam);
}

nn::Matrix Gan::sample_noise(std::size_t count, util::Rng& rng) {
  nn::Matrix noise(count, config_.noise_dim);
  for (std::size_t i = 0; i < noise.size(); ++i) {
    noise.data()[i] = static_cast<float>(rng.normal());
  }
  return noise;
}

double Gan::discriminator_step(const nn::Matrix& real, util::Rng& rng) {
  const std::size_t count = real.rows();

  // Smoothed copies of real and fake batches (Pasquini et al.'s trick).
  nn::Matrix real_input = real;
  nn::Matrix fake_input =
      generator_.forward_inference(sample_noise(count, rng));
  if (config_.smoothing_noise > 0.0) {
    for (std::size_t i = 0; i < real_input.size(); ++i) {
      real_input.data()[i] +=
          static_cast<float>(rng.normal(0.0, config_.smoothing_noise));
      fake_input.data()[i] +=
          static_cast<float>(rng.normal(0.0, config_.smoothing_noise));
    }
  }

  // Real pass: L = mean softplus(-logit); dL/dlogit = (sigmoid(l) - 1)/n.
  discriminator_.zero_grad();
  nn::Matrix real_logits = discriminator_.forward(real_input);
  double loss = 0.0;
  nn::Matrix grad_real(real_logits.rows(), 1);
  for (std::size_t r = 0; r < real_logits.rows(); ++r) {
    const double logit = real_logits(r, 0);
    loss += softplus(-logit);
    grad_real(r, 0) =
        static_cast<float>((sigmoid(logit) - 1.0) / static_cast<double>(count));
  }
  discriminator_.backward(grad_real);

  // Fake pass: L = mean softplus(logit); dL/dlogit = sigmoid(l)/n.
  nn::Matrix fake_logits = discriminator_.forward(fake_input);
  nn::Matrix grad_fake(fake_logits.rows(), 1);
  for (std::size_t r = 0; r < fake_logits.rows(); ++r) {
    const double logit = fake_logits(r, 0);
    loss += softplus(logit);
    grad_fake(r, 0) =
        static_cast<float>(sigmoid(logit) / static_cast<double>(count));
  }
  discriminator_.backward(grad_fake);

  d_optimizer_->step();
  return loss / static_cast<double>(count);
}

double Gan::generator_step(std::size_t count, util::Rng& rng) {
  generator_.zero_grad();
  discriminator_.zero_grad();  // D grads accumulate but are discarded

  nn::Matrix fake = generator_.forward(sample_noise(count, rng));
  nn::Matrix logits = discriminator_.forward(fake);

  // Non-saturating loss: L = mean softplus(-logit); push fakes toward real.
  double loss = 0.0;
  nn::Matrix grad_logits(logits.rows(), 1);
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    const double logit = logits(r, 0);
    loss += softplus(-logit);
    grad_logits(r, 0) =
        static_cast<float>((sigmoid(logit) - 1.0) / static_cast<double>(count));
  }
  const nn::Matrix grad_fake = discriminator_.backward(grad_logits);
  generator_.backward(grad_fake);

  g_optimizer_->step();
  discriminator_.zero_grad();  // drop the D grads produced above
  return loss / static_cast<double>(count);
}

std::vector<Gan::EpochLosses> Gan::train(
    const std::vector<std::string>& passwords) {
  util::Rng rng(config_.seed);
  std::vector<EpochLosses> history;
  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    const auto perm = rng.permutation(passwords.size());
    EpochLosses losses;
    std::size_t steps = 0;
    for (std::size_t start = 0; start + config_.batch_size <= passwords.size();
         start += config_.batch_size) {
      nn::Matrix real(config_.batch_size, encoder_->dim());
      for (std::size_t r = 0; r < config_.batch_size; ++r) {
        const auto features = encoder_->encode_dequantized(
            passwords[perm[start + r]], rng);
        std::copy(features.begin(), features.end(), real.row(r));
      }
      for (std::size_t k = 0; k < config_.discriminator_steps; ++k) {
        losses.discriminator += discriminator_step(real, rng);
      }
      losses.generator += generator_step(config_.batch_size, rng);
      ++steps;
    }
    if (steps > 0) {
      losses.discriminator /=
          static_cast<double>(steps * config_.discriminator_steps);
      losses.generator /= static_cast<double>(steps);
    }
    history.push_back(losses);
    PF_LOG_DEBUG << config_.label << " epoch " << epoch
                 << " d_loss=" << losses.discriminator
                 << " g_loss=" << losses.generator;
  }
  return history;
}

nn::Matrix Gan::generate_features(const nn::Matrix& noise) {
  return generator_.forward_inference(noise);
}

GanSampler::GanSampler(Gan& model, const data::Encoder& encoder,
                       std::uint64_t seed)
    : model_(&model), encoder_(&encoder), rng_(seed) {}

void GanSampler::generate(std::size_t n, std::vector<std::string>& out) {
  out.reserve(out.size() + n);
  const std::size_t batch_size = 2048;
  std::size_t produced = 0;
  while (produced < n) {
    const std::size_t count = std::min(batch_size, n - produced);
    nn::Matrix noise(count, model_->noise_dim());
    for (std::size_t i = 0; i < noise.size(); ++i) {
      noise.data()[i] = static_cast<float>(rng_.normal());
    }
    const nn::Matrix x = model_->generate_features(noise);
    for (std::size_t r = 0; r < x.rows(); ++r) {
      out.push_back(encoder_->decode(x.row(r), x.cols()));
    }
    produced += count;
  }
}


void GanSampler::save_state(std::ostream& out) const { rng_.save(out); }

void GanSampler::load_state(std::istream& in) { rng_.load(in); }

}  // namespace passflow::baselines
