#include "baselines/cwae.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <istream>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "nn/ops.hpp"
#include "util/logging.hpp"
#include "util/serial_io.hpp"

namespace passflow::baselines {

double imq_mmd_with_grad(const nn::Matrix& z, const nn::Matrix& prior,
                         nn::Matrix& grad_z, double scale) {
  const std::size_t m = z.rows();
  const std::size_t n = prior.rows();
  const std::size_t d = z.cols();
  grad_z = nn::Matrix(m, d);
  if (m < 2 || n < 2) return 0.0;

  // C = 2 * d * scale^2, the WAE paper's recommended IMQ constant.
  const double c = 2.0 * static_cast<double>(d) * scale * scale;

  auto kernel = [&](const float* a, const float* b, double& sq) {
    sq = 0.0;
    for (std::size_t k = 0; k < d; ++k) {
      const double diff = static_cast<double>(a[k]) - b[k];
      sq += diff * diff;
    }
    return c / (c + sq);
  };

  double mmd = 0.0;

  // z-z term: + 2/(m(m-1)) * sum_{i<j} k(z_i, z_j), gradient flows to both.
  const double zz_coeff = 1.0 / (static_cast<double>(m) * (m - 1));
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = i + 1; j < m; ++j) {
      double sq = 0.0;
      const double k = kernel(z.row(i), z.row(j), sq);
      mmd += 2.0 * zz_coeff * k;
      // dk/da = -2 C (a-b) / (C+sq)^2
      const double gk = -2.0 * c / ((c + sq) * (c + sq));
      for (std::size_t t = 0; t < d; ++t) {
        const double diff = static_cast<double>(z(i, t)) - z(j, t);
        grad_z(i, t) += static_cast<float>(2.0 * zz_coeff * gk * diff);
        grad_z(j, t) -= static_cast<float>(2.0 * zz_coeff * gk * diff);
      }
    }
  }

  // prior-prior term: constant w.r.t. z, contributes to the value only.
  const double pp_coeff = 1.0 / (static_cast<double>(n) * (n - 1));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      double sq = 0.0;
      mmd += 2.0 * pp_coeff * kernel(prior.row(i), prior.row(j), sq);
    }
  }

  // cross term: - 2/(mn) * sum_{i,j} k(z_i, y_j).
  const double cross_coeff = 2.0 / (static_cast<double>(m) * n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double sq = 0.0;
      const double k = kernel(z.row(i), prior.row(j), sq);
      mmd -= cross_coeff * k;
      const double gk = -2.0 * c / ((c + sq) * (c + sq));
      for (std::size_t t = 0; t < d; ++t) {
        const double diff = static_cast<double>(z(i, t)) - prior(j, t);
        grad_z(i, t) -= static_cast<float>(cross_coeff * gk * diff);
      }
    }
  }
  return mmd;
}

Cwae::Cwae(const data::Encoder& encoder, CwaeConfig config, util::Rng& rng)
    : encoder_(&encoder),
      config_(config),
      encoder_net_(encoder.dim(), config.encoder_hidden, config.latent_dim,
                   rng, nn::ActKind::kRelu, /*has_final_act=*/false,
                   nn::ActKind::kTanh, "cwae.enc"),
      decoder_net_(config.latent_dim, config.decoder_hidden, encoder.dim(),
                   rng, nn::ActKind::kRelu, /*has_final_act=*/true,
                   nn::ActKind::kSigmoid, "cwae.dec") {
  std::vector<nn::Param*> params = encoder_net_.parameters();
  const auto dec = decoder_net_.parameters();
  params.insert(params.end(), dec.begin(), dec.end());
  nn::AdamConfig adam;
  adam.learning_rate = config_.learning_rate;
  adam.clip_norm = 5.0;
  optimizer_ = std::make_unique<nn::Adam>(params, adam);
}

std::size_t Cwae::parameter_count() {
  return encoder_net_.parameter_count() + decoder_net_.parameter_count();
}

double Cwae::train_batch(const nn::Matrix& noisy, const nn::Matrix& clean,
                         util::Rng& rng) {
  encoder_net_.zero_grad();
  decoder_net_.zero_grad();

  const nn::Matrix z = encoder_net_.forward(noisy);
  const nn::Matrix reconstruction = decoder_net_.forward(z);

  const std::size_t count = clean.rows();
  // Reconstruction: mean squared error against the *clean* target.
  nn::Matrix grad_rec = reconstruction;
  nn::sub_inplace(grad_rec, clean);
  double rec_loss = nn::squared_sum(grad_rec) / static_cast<double>(count);
  nn::scale_inplace(grad_rec, 2.0f / static_cast<float>(count));

  // MMD penalty against prior samples.
  nn::Matrix prior(z.rows(), z.cols());
  for (std::size_t i = 0; i < prior.size(); ++i) {
    prior.data()[i] = static_cast<float>(rng.normal());
  }
  nn::Matrix grad_mmd;
  const double mmd = imq_mmd_with_grad(z, prior, grad_mmd);

  nn::Matrix grad_z = decoder_net_.backward(grad_rec);
  nn::axpy_inplace(grad_z, static_cast<float>(config_.mmd_weight), grad_mmd);
  encoder_net_.backward(grad_z);

  optimizer_->step();
  return rec_loss + config_.mmd_weight * mmd;
}

double Cwae::train(const std::vector<std::string>& passwords) {
  util::Rng rng(config_.seed);
  const std::size_t dim = encoder_->dim();
  const float pad_value = 0.5f * encoder_->bin_width();  // PAD bin center

  double last_epoch_loss = 0.0;
  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    const auto perm = rng.permutation(passwords.size());
    double epoch_loss = 0.0;
    std::size_t batches = 0;
    for (std::size_t start = 0; start < passwords.size();
         start += config_.batch_size) {
      const std::size_t count =
          std::min(config_.batch_size, passwords.size() - start);
      if (count < 4) break;  // MMD needs a non-degenerate batch
      nn::Matrix clean(count, dim);
      nn::Matrix noisy(count, dim);
      for (std::size_t r = 0; r < count; ++r) {
        const std::string& password = passwords[perm[start + r]];
        const auto features = encoder_->encode_dequantized(password, rng);
        std::copy(features.begin(), features.end(), clean.row(r));
        std::copy(features.begin(), features.end(), noisy.row(r));
        // Context noise: drop each character with prob epsilon/|x| (§VI-C).
        const double drop_p =
            password.empty() ? 0.0
                             : config_.epsilon /
                                   static_cast<double>(password.size());
        for (std::size_t c = 0; c < password.size(); ++c) {
          if (rng.bernoulli(std::min(0.9, drop_p))) {
            noisy(r, c) = pad_value;
          }
        }
      }
      epoch_loss += train_batch(noisy, clean, rng);
      ++batches;
    }
    last_epoch_loss = batches > 0 ? epoch_loss / batches : 0.0;
    PF_LOG_DEBUG << "cwae epoch " << epoch << " loss=" << last_epoch_loss;
  }
  return last_epoch_loss;
}

nn::Matrix Cwae::decode_latent(const nn::Matrix& z) {
  return decoder_net_.forward_inference(z);
}

nn::Matrix Cwae::encode_features(const nn::Matrix& x) {
  return encoder_net_.forward_inference(x);
}

CwaeSampler::CwaeSampler(Cwae& model, const data::Encoder& encoder,
                         std::uint64_t seed)
    : model_(&model), encoder_(&encoder), rng_(seed) {}

void CwaeSampler::generate(std::size_t n, std::vector<std::string>& out) {
  out.reserve(out.size() + n);
  const std::size_t batch_size = 2048;
  std::size_t produced = 0;
  while (produced < n) {
    const std::size_t count = std::min(batch_size, n - produced);
    nn::Matrix z(count, model_->config().latent_dim);
    for (std::size_t i = 0; i < z.size(); ++i) {
      z.data()[i] = static_cast<float>(rng_.normal());
    }
    const nn::Matrix x = model_->decode_latent(z);
    for (std::size_t r = 0; r < x.rows(); ++r) {
      out.push_back(encoder_->decode(x.row(r), x.cols()));
    }
    produced += count;
  }
}


void CwaeSampler::save_state(std::ostream& out) const { rng_.save(out); }

void CwaeSampler::load_state(std::istream& in) { rng_.load(in); }

}  // namespace passflow::baselines
