// Character-level Markov (n-gram) password model.
//
// The classic pre-neural comparator the paper's related work cites (JtR's
// Markov mode, [2]; Melicher et al. [30] show neural nets beat it). Included
// as an extra baseline and as a sanity anchor for the benches: a learned
// flow should clearly beat order-0, and a healthy order-3 model is a strong
// cheap opponent on structured corpora.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "data/alphabet.hpp"
#include "guessing/generator.hpp"
#include "util/rng.hpp"

namespace passflow::baselines {

class MarkovModel {
 public:
  // `order` = number of context characters (0 = unigram). `add_k` is the
  // Laplace smoothing constant.
  MarkovModel(const data::Alphabet& alphabet, std::size_t order,
              std::size_t max_length, double add_k = 0.05);

  void train(const std::vector<std::string>& passwords);

  // Samples one password (terminates on the end symbol or max_length).
  std::string sample(util::Rng& rng) const;

  // Log-probability of a password under the model (natural log).
  double log_prob(const std::string& password) const;

  std::size_t order() const { return order_; }
  std::size_t context_count() const { return table_.size(); }

 private:
  // Counts per context; index = symbol code (size+1 with end-of-string).
  using CountRow = std::vector<double>;

  std::string context_key(const std::string& password, std::size_t pos) const;
  const CountRow* row_for(const std::string& context) const;

  const data::Alphabet* alphabet_;
  std::size_t order_;
  std::size_t max_length_;
  double add_k_;
  std::size_t end_symbol_;  // code used for end-of-password
  std::unordered_map<std::string, CountRow> table_;
  bool trained_ = false;
};

class MarkovSampler : public guessing::GuessGenerator {
 public:
  MarkovSampler(const MarkovModel& model, std::uint64_t seed = 47);

  void generate(std::size_t n, std::vector<std::string>& out) override;
  std::string name() const override;

  bool supports_state_serialization() const override { return true; }
  void save_state(std::ostream& out) const override;
  void load_state(std::istream& in) override;

 private:
  const MarkovModel* model_;
  util::Rng rng_;
};

}  // namespace passflow::baselines
