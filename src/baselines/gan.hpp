// GAN baselines: PassGAN (Hitaj et al. [22]) and the improved GAN of
// Pasquini et al. [33], §VI-A/B.
//
// Substitution note (DESIGN.md #3): the originals are Wasserstein GANs with
// gradient penalty; GP needs double backprop, which a manual-backprop stack
// cannot provide cheaply. We train a non-saturating GAN instead and keep the
// piece of Pasquini et al. that actually matters for sample quality on this
// data — additive smoothing noise on the (real and generated) password
// representations fed to the discriminator — plus discriminator weight decay
// for stability. PassGAN is modeled as the same framework with a shallower
// generator and no representation smoothing, mirroring the capability gap
// between [22] and [33].
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "data/encoder.hpp"
#include "guessing/generator.hpp"
#include "nn/adam.hpp"
#include "nn/mlp.hpp"

namespace passflow::baselines {

struct GanConfig {
  std::size_t noise_dim = 64;
  std::vector<std::size_t> generator_hidden = {256, 256, 256};
  std::vector<std::size_t> discriminator_hidden = {256, 256};
  double smoothing_noise = 0.02;  // Pasquini-style representation smoothing
  double learning_rate = 2e-4;
  double discriminator_weight_decay = 1e-4;
  std::size_t batch_size = 256;
  std::size_t epochs = 10;
  std::size_t discriminator_steps = 1;  // D updates per G update
  std::uint64_t seed = 31;
  std::string label = "GAN";
};

// PassGAN-flavored configuration: shallower nets, no smoothing.
GanConfig passgan_config();
// Pasquini-flavored configuration: deeper nets + smoothing noise.
GanConfig pasquini_gan_config();

class Gan {
 public:
  Gan(const data::Encoder& encoder, GanConfig config, util::Rng& rng);

  struct EpochLosses {
    double discriminator = 0.0;
    double generator = 0.0;
  };

  // Adversarial training on raw password strings; returns per-epoch losses.
  std::vector<EpochLosses> train(const std::vector<std::string>& passwords);

  // Maps noise to feature vectors.
  nn::Matrix generate_features(const nn::Matrix& noise);

  std::size_t noise_dim() const { return config_.noise_dim; }
  const GanConfig& config() const { return config_; }

 private:
  double discriminator_step(const nn::Matrix& real, util::Rng& rng);
  double generator_step(std::size_t count, util::Rng& rng);
  nn::Matrix sample_noise(std::size_t count, util::Rng& rng);

  const data::Encoder* encoder_;
  GanConfig config_;
  nn::Mlp generator_;
  nn::Mlp discriminator_;
  std::unique_ptr<nn::Adam> g_optimizer_;
  std::unique_ptr<nn::Adam> d_optimizer_;
};

class GanSampler : public guessing::GuessGenerator {
 public:
  GanSampler(Gan& model, const data::Encoder& encoder,
             std::uint64_t seed = 37);

  void generate(std::size_t n, std::vector<std::string>& out) override;
  std::string name() const override { return model_->config().label; }

  bool supports_state_serialization() const override { return true; }
  void save_state(std::ostream& out) const override;
  void load_state(std::istream& in) override;

 private:
  Gan* model_;
  const data::Encoder* encoder_;
  util::Rng rng_;
};

}  // namespace passflow::baselines
