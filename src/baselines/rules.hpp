// Rule-based wordlist mangling — the HashCat / John-the-Ripper style
// comparator the paper positions itself against (§I: "carefully generated
// rules handcrafted by human experts").
//
// A RuleEngine pairs a wordlist with an ordered list of mangling rules and
// streams candidate guesses: for each rule (in priority order), apply it to
// every word. This reproduces the classic "wordlist + best64"-style attack
// shape; default_ruleset() encodes the common human-expert patterns
// (capitalize, append digits/years, leetspeak, suffix symbols, ...).
#pragma once

#include <cstddef>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "guessing/generator.hpp"

namespace passflow::baselines {

struct ManglingRule {
  std::string name;
  std::function<std::string(const std::string&)> apply;
};

// Primitive transformations (composable building blocks).
ManglingRule rule_identity();
ManglingRule rule_capitalize();
ManglingRule rule_uppercase();
ManglingRule rule_reverse();
ManglingRule rule_duplicate();
ManglingRule rule_leet();                      // a->4, e->3, i->1, o->0, s->5
ManglingRule rule_append(const std::string& suffix);
ManglingRule rule_prepend(const std::string& prefix);
ManglingRule rule_truncate(std::size_t length);
ManglingRule rule_compose(std::string name, ManglingRule first,
                          ManglingRule second);

// A best64-flavored ordered ruleset: identity, digit suffixes, years,
// capitalization, leet, combinations. Order encodes expert-judged priority.
std::vector<ManglingRule> default_ruleset();

class RuleEngine : public guessing::GuessGenerator {
 public:
  // `wordlist` should be ordered by descending frequency (the engine
  // iterates rule-major, word-minor, like hashcat does).
  RuleEngine(std::vector<std::string> wordlist,
             std::vector<ManglingRule> rules, std::size_t max_length = 10);

  void generate(std::size_t n, std::vector<std::string>& out) override;
  std::string name() const override { return "Rules (HashCat-style)"; }

  // Rule-major/word-minor iteration is deterministic; the cursor is the
  // whole stream state.
  bool supports_state_serialization() const override { return true; }
  void save_state(std::ostream& out) const override;
  void load_state(std::istream& in) override;

  // Total candidates before exhaustion (rules x words).
  std::size_t capacity() const { return wordlist_.size() * rules_.size(); }
  bool exhausted() const { return cursor_ >= capacity(); }

 private:
  std::vector<std::string> wordlist_;
  std::vector<ManglingRule> rules_;
  std::size_t max_length_;
  std::size_t cursor_ = 0;
};

// Builds a frequency-ordered wordlist from a training corpus (unique
// passwords ordered by multiplicity) — what an attacker distills from a
// previous leak.
std::vector<std::string> wordlist_from_corpus(
    const std::vector<std::string>& corpus, std::size_t max_words);

}  // namespace passflow::baselines
