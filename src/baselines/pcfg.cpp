#include "baselines/pcfg.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <istream>
#include <map>
#include <limits>
#include <ostream>
#include <queue>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>
#include "util/serial_io.hpp"

namespace passflow::baselines {

SegmentClass classify_char(char c) {
  if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')) {
    return SegmentClass::kLetter;
  }
  if (c >= '0' && c <= '9') return SegmentClass::kDigit;
  return SegmentClass::kSymbol;
}

Structure parse_structure(const std::string& password) {
  Structure structure;
  for (char c : password) {
    const SegmentClass cls = classify_char(c);
    if (!structure.empty() && structure.back().cls == cls) {
      ++structure.back().length;
    } else {
      structure.push_back({cls, 1});
    }
  }
  return structure;
}

std::string structure_to_string(const Structure& structure) {
  std::string out;
  for (const Segment& segment : structure) {
    out += static_cast<char>(segment.cls);
    out += std::to_string(segment.length);
  }
  return out;
}

PcfgModel::PcfgModel(std::size_t max_length) : max_length_(max_length) {}

std::string PcfgModel::table_key(const Segment& segment) {
  return std::string(1, static_cast<char>(segment.cls)) +
         std::to_string(segment.length);
}

void PcfgModel::train(const std::vector<std::string>& passwords) {
  std::map<std::string, std::pair<Structure, double>> structure_counts;
  double total = 0.0;
  for (const std::string& password : passwords) {
    if (password.empty() || password.size() > max_length_) continue;
    const Structure structure = parse_structure(password);
    auto& entry = structure_counts[structure_to_string(structure)];
    entry.first = structure;
    entry.second += 1.0;
    total += 1.0;

    std::size_t offset = 0;
    for (const Segment& segment : structure) {
      const std::string value = password.substr(offset, segment.length);
      offset += segment.length;
      TerminalTable& table = terminals_[table_key(segment)];
      const auto it = table.index.find(value);
      if (it == table.index.end()) {
        table.index.emplace(value, table.values.size());
        table.values.emplace_back(value, 1.0);
      } else {
        table.values[it->second].second += 1.0;
      }
      table.total += 1.0;
    }
  }
  if (total == 0.0) {
    throw std::invalid_argument("PCFG training corpus is empty/unusable");
  }

  structures_.clear();
  for (auto& [_, entry] : structure_counts) {
    StructureEntry se;
    se.structure = entry.first;
    se.probability = entry.second / total;
    structures_.push_back(std::move(se));
  }
  finalize();
}

void PcfgModel::finalize() {
  for (auto& [_, table] : terminals_) {
    std::sort(table.values.begin(), table.values.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    table.index.clear();
    for (std::size_t i = 0; i < table.values.size(); ++i) {
      table.index.emplace(table.values[i].first, i);
    }
  }
  for (auto& entry : structures_) {
    entry.tables.clear();
    for (const Segment& segment : entry.structure) {
      entry.tables.push_back(&terminals_.at(table_key(segment)));
    }
  }
  std::sort(structures_.begin(), structures_.end(),
            [](const auto& a, const auto& b) {
              return a.probability > b.probability;
            });
  finalized_ = true;
}

double PcfgModel::log_prob(const std::string& password) const {
  if (!finalized_) throw std::logic_error("PcfgModel::log_prob before train");
  if (password.empty() || password.size() > max_length_) {
    return -std::numeric_limits<double>::infinity();
  }
  const Structure structure = parse_structure(password);
  const std::string key = structure_to_string(structure);
  const auto it = std::find_if(
      structures_.begin(), structures_.end(), [&](const auto& entry) {
        return structure_to_string(entry.structure) == key;
      });
  if (it == structures_.end()) {
    return -std::numeric_limits<double>::infinity();
  }
  double log_p = std::log(it->probability);
  std::size_t offset = 0;
  for (std::size_t s = 0; s < structure.size(); ++s) {
    const std::string value = password.substr(offset, structure[s].length);
    offset += structure[s].length;
    const TerminalTable& table = *it->tables[s];
    const auto vi = table.index.find(value);
    if (vi == table.index.end()) {
      return -std::numeric_limits<double>::infinity();
    }
    log_p += std::log(table.values[vi->second].second / table.total);
  }
  return log_p;
}

std::string PcfgModel::sample(util::Rng& rng) const {
  if (!finalized_) throw std::logic_error("PcfgModel::sample before train");
  // Sample a structure proportional to probability.
  double r = rng.uniform();
  const StructureEntry* chosen = &structures_.back();
  for (const auto& entry : structures_) {
    r -= entry.probability;
    if (r <= 0.0) {
      chosen = &entry;
      break;
    }
  }
  std::string password;
  for (const TerminalTable* table : chosen->tables) {
    double t = rng.uniform() * table->total;
    const auto& values = table->values;
    std::size_t pick = values.size() - 1;
    for (std::size_t i = 0; i < values.size(); ++i) {
      t -= values[i].second;
      if (t <= 0.0) {
        pick = i;
        break;
      }
    }
    password += values[pick].first;
  }
  return password;
}

namespace {
// Priority-queue state for Weir et al.'s "next" algorithm: a structure plus
// one terminal index per segment. Probability is the product of the
// structure probability and the chosen terminals' probabilities.
struct QueueState {
  std::size_t structure_index;
  std::vector<std::size_t> terminal_indices;
  double log_prob;
  // The position whose index was last incremented; successors only advance
  // positions >= pivot, which guarantees each state is pushed exactly once.
  std::size_t pivot;
};

struct StateCompare {
  bool operator()(const QueueState& a, const QueueState& b) const {
    return a.log_prob < b.log_prob;  // max-heap on probability
  }
};
}  // namespace

std::vector<std::string> PcfgModel::enumerate(std::size_t n) const {
  if (!finalized_) throw std::logic_error("PcfgModel::enumerate before train");
  std::priority_queue<QueueState, std::vector<QueueState>, StateCompare> queue;

  auto state_log_prob = [&](const StructureEntry& entry,
                            const std::vector<std::size_t>& indices) {
    double log_p = std::log(entry.probability);
    for (std::size_t s = 0; s < indices.size(); ++s) {
      const TerminalTable& table = *entry.tables[s];
      log_p += std::log(table.values[indices[s]].second / table.total);
    }
    return log_p;
  };

  for (std::size_t i = 0; i < structures_.size(); ++i) {
    const StructureEntry& entry = structures_[i];
    bool viable = true;
    for (const TerminalTable* table : entry.tables) {
      if (table->values.empty()) viable = false;
    }
    if (!viable) continue;
    QueueState state;
    state.structure_index = i;
    state.terminal_indices.assign(entry.structure.size(), 0);
    state.log_prob = state_log_prob(entry, state.terminal_indices);
    state.pivot = 0;
    queue.push(std::move(state));
  }

  std::vector<std::string> out;
  out.reserve(n);
  while (!queue.empty() && out.size() < n) {
    const QueueState state = queue.top();
    queue.pop();
    const StructureEntry& entry = structures_[state.structure_index];

    std::string password;
    for (std::size_t s = 0; s < state.terminal_indices.size(); ++s) {
      password += entry.tables[s]->values[state.terminal_indices[s]].first;
    }
    out.push_back(std::move(password));

    for (std::size_t s = state.pivot; s < state.terminal_indices.size();
         ++s) {
      if (state.terminal_indices[s] + 1 >= entry.tables[s]->values.size()) {
        continue;
      }
      QueueState next = state;
      ++next.terminal_indices[s];
      next.pivot = s;
      next.log_prob = state_log_prob(entry, next.terminal_indices);
      queue.push(std::move(next));
    }
  }
  return out;
}

PcfgSampler::PcfgSampler(const PcfgModel& model, std::uint64_t seed)
    : model_(&model), rng_(seed) {}

void PcfgSampler::generate(std::size_t n, std::vector<std::string>& out) {
  out.reserve(out.size() + n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(model_->sample(rng_));
}

PcfgEnumerator::PcfgEnumerator(const PcfgModel& model) : model_(&model) {}

void PcfgEnumerator::generate(std::size_t n, std::vector<std::string>& out) {
  // Grow the enumeration buffer on demand; enumerate() restarts from the
  // top, so amortize by doubling.
  if (cursor_ + n > buffer_.size()) {
    const std::size_t want = std::max(cursor_ + n, buffer_.size() * 2);
    buffer_ = model_->enumerate(want);
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (cursor_ < buffer_.size()) {
      out.push_back(buffer_[cursor_++]);
    } else {
      // Grammar exhausted: emit unmatchable filler so budgets stay exact.
      out.push_back("");
    }
  }
}


void PcfgSampler::save_state(std::ostream& out) const { rng_.save(out); }

void PcfgSampler::load_state(std::istream& in) { rng_.load(in); }

void PcfgEnumerator::save_state(std::ostream& out) const {
  util::io::write_u64(out, cursor_);
}

void PcfgEnumerator::load_state(std::istream& in) {
  cursor_ = util::io::read_u64(in);
  // The buffer re-derives lazily; generate() re-enumerates past the cursor.
  buffer_.clear();
}

}  // namespace passflow::baselines
