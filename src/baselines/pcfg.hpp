// Probabilistic context-free grammar password model (Weir et al., S&P 2009).
//
// The classic pre-neural state of the art the paper's related work opens
// with (§VI): passwords are parsed into maximal character-class segments
// (L=letters, D=digits, S=symbols), giving a "base structure" like L5D2;
// the grammar learns P(structure) and P(terminal | class, length) from a
// training corpus and emits guesses in decreasing probability order using
// the "next" priority-queue algorithm from the original paper.
//
// Two generation modes:
//  * enumerate(n): the faithful descending-probability enumeration;
//  * PcfgSampler: i.i.d. sampling from the grammar (GuessGenerator
//    interface, comparable to the neural models in the harness).
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "guessing/generator.hpp"
#include "util/rng.hpp"

namespace passflow::baselines {

enum class SegmentClass : char { kLetter = 'L', kDigit = 'D', kSymbol = 'S' };

struct Segment {
  SegmentClass cls;
  std::size_t length;
  bool operator==(const Segment& other) const {
    return cls == other.cls && length == other.length;
  }
};

// A base structure is a sequence of segments, e.g. L5D2.
using Structure = std::vector<Segment>;

std::string structure_to_string(const Structure& structure);
SegmentClass classify_char(char c);

// Splits a password into maximal same-class runs.
Structure parse_structure(const std::string& password);

class PcfgModel {
 public:
  explicit PcfgModel(std::size_t max_length = 10);

  // Learns structure and terminal probabilities from the corpus (entries
  // longer than max_length are skipped, mirroring dataset ingestion).
  void train(const std::vector<std::string>& passwords);

  // Log-probability of a password under the grammar; -inf if its structure
  // or any terminal was never observed.
  double log_prob(const std::string& password) const;

  // Top-n guesses in strictly non-increasing probability order.
  std::vector<std::string> enumerate(std::size_t n) const;

  // One i.i.d. sample from the grammar.
  std::string sample(util::Rng& rng) const;

  std::size_t structure_count() const { return structures_.size(); }
  bool trained() const { return !structures_.empty(); }

 private:
  struct TerminalTable {
    // Values with counts, sorted by descending count after finalize().
    std::vector<std::pair<std::string, double>> values;
    double total = 0.0;
    std::unordered_map<std::string, std::size_t> index;
  };

  struct StructureEntry {
    Structure structure;
    double probability = 0.0;
    std::vector<const TerminalTable*> tables;  // one per segment
  };

  static std::string table_key(const Segment& segment);
  void finalize();

  std::size_t max_length_;
  std::vector<StructureEntry> structures_;  // sorted by descending prob
  std::unordered_map<std::string, TerminalTable> terminals_;
  bool finalized_ = false;
};

class PcfgSampler : public guessing::GuessGenerator {
 public:
  PcfgSampler(const PcfgModel& model, std::uint64_t seed = 83);

  void generate(std::size_t n, std::vector<std::string>& out) override;
  std::string name() const override { return "PCFG (Weir et al.)"; }

  bool supports_state_serialization() const override { return true; }
  void save_state(std::ostream& out) const override;
  void load_state(std::istream& in) override;

 private:
  const PcfgModel* model_;
  util::Rng rng_;
};

// Enumerating generator: replays the descending-probability stream through
// the GuessGenerator interface (the paper's rule-based anchor behavior).
class PcfgEnumerator : public guessing::GuessGenerator {
 public:
  explicit PcfgEnumerator(const PcfgModel& model);

  void generate(std::size_t n, std::vector<std::string>& out) override;
  std::string name() const override { return "PCFG-enum (Weir et al.)"; }

  // The enumeration stream is deterministic; the cursor is the state (the
  // buffer re-derives from the grammar on demand).
  bool supports_state_serialization() const override { return true; }
  void save_state(std::ostream& out) const override;
  void load_state(std::istream& in) override;

 private:
  const PcfgModel* model_;
  std::vector<std::string> buffer_;
  std::size_t cursor_ = 0;
};

}  // namespace passflow::baselines
