#include "baselines/markov.hpp"

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>
#include "util/serial_io.hpp"

namespace passflow::baselines {

MarkovModel::MarkovModel(const data::Alphabet& alphabet, std::size_t order,
                         std::size_t max_length, double add_k)
    : alphabet_(&alphabet),
      order_(order),
      max_length_(max_length),
      add_k_(add_k),
      end_symbol_(alphabet.size()) {}

std::string MarkovModel::context_key(const std::string& password,
                                     std::size_t pos) const {
  // Context = up to `order` characters before `pos`, left-padded with '\1'
  // (a start marker outside every alphabet).
  std::string key;
  for (std::size_t back = order_; back > 0; --back) {
    if (pos >= back) {
      key += password[pos - back];
    } else {
      key += '\1';
    }
  }
  return key;
}

void MarkovModel::train(const std::vector<std::string>& passwords) {
  const std::size_t symbols = alphabet_->size() + 1;  // + end marker
  for (const std::string& password : passwords) {
    if (password.size() > max_length_ || !alphabet_->validates(password)) {
      continue;  // skip unrepresentable entries, as dataset ingestion does
    }
    for (std::size_t pos = 0; pos <= password.size(); ++pos) {
      CountRow& row = table_[context_key(password, pos)];
      if (row.empty()) row.assign(symbols, 0.0);
      if (pos == password.size()) {
        row[end_symbol_] += 1.0;
      } else {
        const auto code = alphabet_->code_of(password[pos]);
        row[*code] += 1.0;
      }
    }
  }
  trained_ = true;
}

const MarkovModel::CountRow* MarkovModel::row_for(
    const std::string& context) const {
  const auto it = table_.find(context);
  return it == table_.end() ? nullptr : &it->second;
}

std::string MarkovModel::sample(util::Rng& rng) const {
  if (!trained_) throw std::logic_error("MarkovModel::sample before train");
  const std::size_t symbols = alphabet_->size() + 1;
  std::string password;
  while (password.size() < max_length_) {
    const CountRow* row = row_for(context_key(password, password.size()));
    double total = 0.0;
    for (std::size_t s = 1; s < symbols; ++s) {  // skip PAD (code 0)
      total += (row ? (*row)[s] : 0.0) + add_k_;
    }
    double r = rng.uniform() * total;
    std::size_t chosen = end_symbol_;
    for (std::size_t s = 1; s < symbols; ++s) {
      r -= (row ? (*row)[s] : 0.0) + add_k_;
      if (r <= 0.0) {
        chosen = s;
        break;
      }
    }
    if (chosen == end_symbol_) break;
    password += alphabet_->char_of(chosen);
  }
  return password;
}

double MarkovModel::log_prob(const std::string& password) const {
  if (!trained_) throw std::logic_error("MarkovModel::log_prob before train");
  if (password.size() > max_length_ || !alphabet_->validates(password)) {
    return -std::numeric_limits<double>::infinity();
  }
  const std::size_t symbols = alphabet_->size() + 1;
  double log_p = 0.0;
  for (std::size_t pos = 0; pos <= password.size(); ++pos) {
    const CountRow* row = row_for(context_key(password, pos));
    double total = 0.0;
    for (std::size_t s = 1; s < symbols; ++s) {
      total += (row ? (*row)[s] : 0.0) + add_k_;
    }
    const std::size_t target =
        pos == password.size()
            ? end_symbol_
            : *alphabet_->code_of(password[pos]);
    const double count = (row ? (*row)[target] : 0.0) + add_k_;
    log_p += std::log(count / total);
  }
  return log_p;
}

MarkovSampler::MarkovSampler(const MarkovModel& model, std::uint64_t seed)
    : model_(&model), rng_(seed) {}

void MarkovSampler::generate(std::size_t n, std::vector<std::string>& out) {
  out.reserve(out.size() + n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(model_->sample(rng_));
}

std::string MarkovSampler::name() const {
  return "Markov-" + std::to_string(model_->order());
}


void MarkovSampler::save_state(std::ostream& out) const { rng_.save(out); }

void MarkovSampler::load_state(std::istream& in) { rng_.load(in); }

}  // namespace passflow::baselines
