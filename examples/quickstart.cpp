// Quickstart: train a small PassFlow model on a synthetic password corpus
// and sample guesses from it.
//
//   ./examples/quickstart
//
// Walks through the whole public API in ~1 minute: corpus generation,
// encoding, flow training, static sampling, and exact density evaluation.
#include <cstdio>

#include "data/synthetic_rockyou.hpp"
#include "flow/trainer.hpp"
#include "guessing/static_sampler.hpp"
#include "util/logging.hpp"

namespace pf = passflow;

int main() {
  pf::util::set_log_level(pf::util::LogLevel::kInfo);

  // 1. Build a corpus. In a real engagement this would be a leaked list;
  //    here we use the repo's synthetic RockYou-like generator.
  pf::data::CorpusConfig corpus_config;
  corpus_config.max_length = 10;
  pf::data::SyntheticRockyou generator(corpus_config, /*seed=*/42);
  const auto passwords = generator.generate(20000);
  std::printf("corpus: %zu passwords (with natural duplication)\n",
              passwords.size());

  // 2. Encoder: passwords <-> continuous feature vectors (§IV-D).
  pf::data::Encoder encoder(pf::data::Alphabet::standard(), 10);

  // 3. A small flow. The paper's architecture is FlowConfig{} defaults
  //    (18 couplings, hidden 256); this quickstart trains a lighter one.
  pf::flow::FlowConfig config;
  config.num_couplings = 6;
  config.hidden = 64;
  config.residual_blocks = 1;
  pf::util::Rng rng(7);
  pf::flow::FlowModel model(config, rng);
  std::printf("model: %zu couplings, %zu parameters\n", config.num_couplings,
              model.parameter_count());

  // 4. Train with exact negative log-likelihood (Eq. 7-8).
  pf::flow::TrainConfig train_config;
  train_config.epochs = 5;
  train_config.batch_size = 512;
  pf::flow::Trainer trainer(model, train_config);
  const auto result = trainer.train(passwords, encoder);
  std::printf("best validation NLL %.3f at epoch %zu\n",
              result.best_validation_nll, result.best_epoch);

  // 5. Sample guesses: z ~ N(0, I), x = f^-1(z), decode.
  pf::guessing::StaticSampler sampler(model, encoder);
  std::vector<std::string> guesses;
  sampler.generate(24, guesses);
  std::printf("\nsample guesses:\n");
  for (std::size_t i = 0; i < guesses.size(); ++i) {
    std::printf("  %-12s%s", guesses[i].c_str(),
                (i + 1) % 4 == 0 ? "\n" : "");
  }

  // 6. Exact log-likelihoods — the flow-model superpower (no ELBO bound).
  const auto log_probs = model.log_prob(
      encoder.encode_batch({"123456", "jessica1", "zq0x!vk2"}));
  std::printf("\nexact log p(x):\n");
  std::printf("  123456   -> %8.2f (very common)\n", log_probs[0]);
  std::printf("  jessica1 -> %8.2f (human-like)\n", log_probs[1]);
  std::printf("  zq0x!vk2 -> %8.2f (random-ish)\n", log_probs[2]);
  return 0;
}
