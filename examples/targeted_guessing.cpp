// Targeted guessing with latent-space operations (§V-B).
//
//   ./examples/targeted_guessing [--pivot jimmy91] [--target 123456]
//
// Scenario from the paper's motivation: the attacker has partial knowledge —
// e.g. the victim's old password, or a guess that the password is a name
// variant. PassFlow's explicit latent space supports two attacks GANs cannot
// do without a separately trained encoder:
//   1. bounded pivot sampling — explore the neighborhood of a known string
//      at increasing radii (Table V);
//   2. interpolation — walk the latent line between two hypotheses,
//      emitting plausible passwords along the way (Figure 3, Algorithm 2).
#include <cstdio>

#include "data/synthetic_rockyou.hpp"
#include "flow/trainer.hpp"
#include "guessing/conditional.hpp"
#include "guessing/interpolation.hpp"
#include "guessing/pivot_sampler.hpp"
#include "util/flags.hpp"
#include "util/logging.hpp"

namespace pf = passflow;

int main(int argc, char** argv) {
  pf::util::Flags flags(argc, argv);
  const std::string pivot = flags.get_string("pivot", "jimmy91");
  const std::string target = flags.get_string("target", "123456");
  pf::util::set_log_level(pf::util::LogLevel::kWarn);

  // Train a compact model on synthetic data.
  pf::data::SyntheticRockyou generator({}, 42);
  pf::data::Encoder encoder(pf::data::Alphabet::standard(), 10);
  pf::flow::FlowConfig config;
  config.num_couplings = 6;
  config.hidden = 64;
  config.residual_blocks = 1;
  pf::util::Rng rng(7);
  pf::flow::FlowModel model(config, rng);
  pf::flow::TrainConfig train_config;
  train_config.epochs = 6;
  pf::flow::Trainer trainer(model, train_config);
  std::printf("training on 20000 synthetic passwords...\n");
  trainer.train(generator.generate(20000), encoder);

  // Attack 1: bounded sampling around the pivot at increasing radii.
  std::printf("\n== neighborhood of \"%s\" (pivot sampling) ==\n",
              pivot.c_str());
  pf::guessing::PivotSampler pivot_sampler(model, encoder, pivot);
  for (double sigma : {0.05, 0.10, 0.20}) {
    pf::util::Rng sample_rng(11);
    const auto samples = pivot_sampler.sample_unique(8, sigma, sample_rng);
    std::printf("  sigma=%.2f: ", sigma);
    for (const auto& s : samples) std::printf("%s ", s.c_str());
    std::printf("\n");
  }

  // Attack 2: interpolation between two hypotheses.
  std::printf("\n== interpolation \"%s\" -> \"%s\" ==\n  ", pivot.c_str(),
              target.c_str());
  for (const auto& step :
       pf::guessing::interpolate(model, encoder, pivot, target, 12)) {
    std::printf("%s ", step.c_str());
  }
  // Attack 3 (extension, §VII): conditional completion of a partial
  // password. "jimmy**" -> ranked completions by exact density.
  std::string pattern = pivot;
  if (pattern.size() >= 2) {
    pattern.replace(pattern.size() - 2, 2, "**");
  }
  std::printf("\n== conditional completion of \"%s\" ==\n", pattern.c_str());
  pf::guessing::ConditionalGuesser conditional(model, encoder);
  const auto completions = conditional.complete(pattern, 10);
  for (const auto& guess : completions) {
    std::printf("  %-12s log p = %.2f\n", guess.password.c_str(),
                guess.log_prob);
  }

  std::printf("\nEach emitted string is a candidate guess; feed them to "
              "your cracking pipeline in order.\n");
  return 0;
}
