// Flow-based password strength estimation.
//
//   ./examples/password_strength [--passwords p1,p2,...]
//
// Because flows compute exact log p(x) (Eq. 5), a trained PassFlow model
// doubles as a strength meter in the spirit of Melicher et al. [30]: the
// higher the model's density at a password, the more guessable it is. This
// example trains a model, scores a mixed list, and prints a ranking with a
// coarse strength grade calibrated against the corpus distribution.
#include <algorithm>
#include <cstdio>
#include <sstream>

#include "data/synthetic_rockyou.hpp"
#include "flow/trainer.hpp"
#include "util/flags.hpp"
#include "util/logging.hpp"
#include "util/stats.hpp"

namespace pf = passflow;

namespace {
std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream stream(csv);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}
}  // namespace

int main(int argc, char** argv) {
  pf::util::Flags flags(argc, argv);
  pf::util::set_log_level(pf::util::LogLevel::kWarn);
  std::vector<std::string> candidates = split_csv(flags.get_string(
      "passwords",
      "123456,jessica1,dragon12,Tr0ub4d.r,zq0x!vk2,iloveyou,p4ssw0rd"));

  pf::data::SyntheticRockyou generator({}, 42);
  pf::data::Encoder encoder(pf::data::Alphabet::standard(), 10);
  pf::flow::FlowConfig config;
  config.num_couplings = 6;
  config.hidden = 64;
  config.residual_blocks = 1;
  pf::util::Rng rng(7);
  pf::flow::FlowModel model(config, rng);
  pf::flow::TrainConfig train_config;
  train_config.epochs = 6;
  pf::flow::Trainer trainer(model, train_config);
  std::printf("training strength model on 20000 synthetic passwords...\n");
  const auto corpus = generator.generate(20000);
  trainer.train(corpus, encoder);

  // Calibrate: density quantiles of real (corpus) passwords.
  std::vector<std::string> sample(corpus.begin(), corpus.begin() + 2000);
  std::vector<double> corpus_lp = model.log_prob(encoder.encode_batch(sample));
  std::sort(corpus_lp.begin(), corpus_lp.end());
  auto quantile = [&](double q) {
    return corpus_lp[static_cast<std::size_t>(
        q * static_cast<double>(corpus_lp.size() - 1))];
  };
  const double weak_cut = quantile(0.25);    // denser than 75% of corpus
  const double strong_cut = quantile(0.01);  // sparser than 99% of corpus

  struct Scored {
    std::string password;
    double log_prob;
  };
  std::vector<Scored> scored;
  for (const auto& password : candidates) {
    if (password.size() > encoder.dim() ||
        !encoder.alphabet().validates(password)) {
      std::printf("  (skipping unrepresentable password \"%s\")\n",
                  password.c_str());
      continue;
    }
    const auto lp = model.log_prob(encoder.encode_batch({password}));
    scored.push_back({password, lp[0]});
  }
  std::sort(scored.begin(), scored.end(),
            [](const Scored& a, const Scored& b) {
              return a.log_prob > b.log_prob;
            });

  std::printf("\n%-14s %10s  %s\n", "password", "log p(x)", "grade");
  std::printf("--------------------------------------------\n");
  for (const auto& s : scored) {
    const char* grade = s.log_prob > weak_cut      ? "WEAK (dense region)"
                        : s.log_prob > strong_cut ? "MEDIUM"
                                                   : "STRONG (sparse region)";
    std::printf("%-14s %10.2f  %s\n", s.password.c_str(), s.log_prob, grade);
  }
  std::printf("\ngrades calibrated on corpus density quantiles "
              "(weak>%.1f, strong<%.1f)\n", weak_cut, strong_cut);
  return 0;
}
