// Full attack pipeline: train PassFlow on a leaked subset and run the
// Dynamic Sampling + Gaussian Smoothing attack against a held-out target set
// — the paper's headline experiment as a single CLI.
//
//   ./examples/train_and_attack [--guesses 100000] [--epochs 10]
//                               [--train-size 10000] [--strategy dynamic+gs]
//
// Strategies: static | dynamic | dynamic+gs (Table II rows).
#include <cstdio>

#include "data/synthetic_rockyou.hpp"
#include "flow/trainer.hpp"
#include "guessing/dynamic_sampler.hpp"
#include "guessing/harness.hpp"
#include "guessing/static_sampler.hpp"
#include "util/flags.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

namespace pf = passflow;

int main(int argc, char** argv) {
  pf::util::Flags flags(argc, argv);
  const auto guesses =
      static_cast<std::size_t>(flags.get_int("guesses", 100000));
  const auto epochs = static_cast<std::size_t>(flags.get_int("epochs", 10));
  const auto train_size =
      static_cast<std::size_t>(flags.get_int("train-size", 10000));
  const std::string strategy = flags.get_string("strategy", "dynamic+gs");
  pf::util::set_log_level(pf::util::LogLevel::kInfo);

  // Leak simulation: the attacker holds a subsample of one breach and
  // attacks the (disjoint, deduplicated) remainder — §IV-D's protocol.
  pf::data::CorpusConfig corpus_config;
  pf::data::SyntheticRockyou generator(corpus_config, 20220614);
  const auto corpus = generator.generate(std::max<std::size_t>(
      120000, train_size * 8));
  pf::util::Rng rng(1);
  const auto split =
      pf::data::make_rockyou_style_split(corpus, train_size, rng);
  std::printf("attacker knows %zu passwords; target set: %zu unique unseen\n",
              split.train.size(), split.test_unique.size());

  pf::data::Encoder encoder(pf::data::Alphabet::standard(), 10);
  pf::flow::FlowConfig config;
  config.num_couplings = 8;
  config.hidden = 96;
  pf::util::Rng model_rng(2);
  pf::flow::FlowModel model(config, model_rng);
  pf::flow::TrainConfig train_config;
  train_config.epochs = epochs;
  pf::flow::Trainer trainer(model, train_config);
  pf::util::Timer timer;
  trainer.train(split.train, encoder);
  std::printf("trained in %s\n",
              pf::util::format_duration(timer.elapsed_seconds()).c_str());

  pf::guessing::Matcher matcher(split.test_unique);
  pf::guessing::HarnessConfig harness;
  harness.budget = guesses;
  harness.log_progress = true;
  harness.chunk_size = 4096;

  pf::guessing::RunResult result;
  if (strategy == "static") {
    pf::guessing::StaticSampler sampler(model, encoder);
    result = run_guessing(sampler, matcher, harness);
  } else {
    auto sampler_config = pf::guessing::table1_parameters(guesses);
    sampler_config.smoothing.enabled = (strategy == "dynamic+gs");
    if (strategy != "dynamic" && strategy != "dynamic+gs") {
      std::fprintf(stderr, "unknown --strategy %s\n", strategy.c_str());
      return 1;
    }
    pf::guessing::DynamicSampler sampler(model, encoder, sampler_config);
    result = run_guessing(sampler, matcher, harness);
  }

  std::printf("\n=== attack summary (%s) ===\n", strategy.c_str());
  for (const auto& cp : result.checkpoints) {
    std::printf("  %9zu guesses: %6zu matched (%.3f%%), %zu unique\n",
                cp.guesses, cp.matched, cp.matched_percent, cp.unique);
  }
  std::printf("cracked examples: ");
  for (std::size_t i = 0; i < std::min<std::size_t>(
                              8, result.matched_passwords.size()); ++i) {
    std::printf("%s ", result.matched_passwords[i].c_str());
  }
  std::printf("\ntotal time %s\n",
              pf::util::format_duration(result.seconds).c_str());
  return 0;
}
