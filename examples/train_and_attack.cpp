// Full attack pipeline: train PassFlow on a leaked subset and run the
// Dynamic Sampling + Gaussian Smoothing attack against a held-out target set
// — the paper's headline experiment as a single CLI, driven through the
// streaming AttackSession engine.
//
//   ./examples/train_and_attack [--guesses 100000] [--epochs 10]
//                               [--train-size 10000] [--strategy dynamic+gs]
//                               [--pipeline 4] [--sketch-unique false]
//                               [--state attack.state]
//                               [--scenarios static@0.8,static@1.0,dynamic+gs]
//                               [--deadline 30] [--rate-cap 0,50000,0]
//                               [--fleet-state fleet.ckpt]
//                               [--checkpoint-every 30]
//                               [--build-index targets.pfidx]
//                               [--index targets.pfidx]
//                               [--coordinator PORT | --worker HOST:PORT]
//                               [--shard-splits N]
//                               [--serve PORT] [--serve-batch K]
//
// Strategies: static | dynamic | dynamic+gs (Table II rows). --pipeline N
// keeps N chunks in flight (feedback-free strategies only; dynamic runs
// serially by construction). --sketch-unique bounds unique-tracking memory
// with the HLL sketch. --state freezes the session after every progress
// report and resumes from the file if it exists, so a long attack survives
// a restart (static strategy only — re-run with the same flags).
//
// --scenarios runs a comma-separated sweep of strategies concurrently as
// one fleet through AttackScheduler: every scenario gets its own sampler
// but they all share one matcher and one worker-pool budget. static@SIGMA
// sets the static sampler's prior stddev, so "static@0.6,static@1.0,
// static@1.4" reproduces a sigma ablation in a single run. Ignores
// --strategy/--state. --deadline and --rate-cap attach per-scenario QoS in
// fleet mode: each takes a comma-separated list matched positionally to
// --scenarios (a single value broadcasts to every scenario; 0 = none).
// Deadlines are soft wall-clock seconds — a scenario past its deadline is
// scheduled with boosted effective weight; rate caps are guesses/second
// enforced by per-scenario token buckets.
//
// --fleet-state makes the fleet crash-safe: the whole scheduler (every
// scenario's stream, the fair-share clocks, QoS ledgers) is frozen to a
// rotated, CRC-framed CheckpointStore at <path>.gNNNNNNNN every
// --checkpoint-every seconds, and SIGINT/SIGTERM drains in-flight slices
// and saves once more before exiting. Restarting with the same flags thaws
// the newest intact generation and resumes where the fleet left off
// (saved QoS ledgers win over the --deadline/--rate-cap flags on resume).
// The checkpoints are deleted when the fleet finishes cleanly.
//
// --build-index writes the target set to a disk index at the given path
// and attacks through the mmap-backed MappedMatcher instead of the
// in-memory hash set; --index attacks through an existing index file
// (e.g. one built offline from a multi-GB leak with IndexBuilder), so the
// target corpus never has to fit in RAM. Metrics are identical either way.
//
// --coordinator PORT serves the --scenarios sweep to worker processes over
// TCP instead of driving it in-process: each scenario — or, with
// --shard-splits N over a disk index, each contiguous shard range of its
// matcher — is assigned to a connected worker, session checkpoints stream
// back over the wire, and a worker that dies mid-scenario is reassigned
// from its last checkpoint onto a survivor. --worker HOST:PORT runs the
// other half: it trains the same model, dials the coordinator and serves
// assignments until Shutdown. Launch workers with the coordinator's exact
// flags — generators are rebuilt from spec strings, so differing
// --epochs/--train-size/--guesses would silently attack with a different
// model. Per-scenario metrics are bitwise identical to the in-process
// --scenarios run (timing aside); the coordinator itself never trains.
//
// --serve PORT skips the attack and instead runs the online
// credential-screening service: a long-lived StrengthServer on the dist
// transport answering batched StrengthQuery messages with per-candidate
// log-likelihood, Monte-Carlo guess numbers and membership in the same
// matcher the attack would have probed. --serve-batch K bounds how many
// candidates the server coalesces into one forward pass. SIGINT/SIGTERM
// stop the service and print its stats. Port 0 picks an ephemeral port.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "data/synthetic_rockyou.hpp"
#include "dist/coordinator.hpp"
#include "dist/worker.hpp"
#include "flow/trainer.hpp"
#include "guessing/dynamic_sampler.hpp"
#include "guessing/mapped_matcher.hpp"
#include "guessing/scheduler.hpp"
#include "guessing/session.hpp"
#include "guessing/static_sampler.hpp"
#include "serve/strength_server.hpp"
#include "util/checkpoint.hpp"
#include "util/flags.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace pf = passflow;

namespace {
// SIGINT/SIGTERM request a drain-and-save instead of killing the fleet;
// sig_atomic_t is the only state a signal handler may touch.
volatile std::sig_atomic_t g_stop_requested = 0;
extern "C" void handle_stop_signal(int) { g_stop_requested = 1; }

std::vector<std::string> split_csv(const std::string& list) {
  std::vector<std::string> items;
  std::stringstream stream(list);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) items.push_back(item);
  }
  return items;
}

// Grammar of one --scenarios spec: static[@SIGMA] | dynamic | dynamic+gs.
// These specs double as the distributed fleet's generator_spec wire
// strings, so the grammar lives here once: the in-process fleet, the
// coordinator's pre-flight validation (a typo must fail before any worker
// sees it and dies on it) and every worker's ScenarioFactory agree by
// construction. sigma is -1 when the spec does not carry one.
bool validate_scenario_spec(const std::string& spec, double* sigma,
                            std::string* error) {
  *sigma = -1.0;
  if (spec == "static" || spec == "dynamic" || spec == "dynamic+gs") {
    return true;
  }
  if (spec.rfind("static@", 0) == 0) {
    try {
      *sigma = std::stod(spec.substr(7));
      return true;
    } catch (const std::exception&) {
      *error = "bad sigma in scenario spec '" + spec + "'";
      return false;
    }
  }
  *error = "unknown scenario spec '" + spec + "'";
  return false;
}

// Builds the sampler for one spec. `position` is the scenario's index in
// the fleet — which is also its distributed scenario_id — folded into the
// seed so identical-sigma scenarios still explore different latent draws
// AND a worker rebuilding scenario #i gets the bit-identical generator the
// in-process fleet would have used. That equivalence is what makes the
// distributed metrics match the single-process run exactly.
std::unique_ptr<pf::guessing::GuessGenerator> make_sampler(
    const std::string& spec, std::size_t position,
    const pf::flow::FlowModel& model, const pf::data::Encoder& encoder,
    std::size_t guesses) {
  double sigma = -1.0;
  std::string error;
  if (!validate_scenario_spec(spec, &sigma, &error)) {
    throw std::invalid_argument(error);
  }
  if (spec.rfind("static", 0) == 0) {
    pf::guessing::StaticSamplerConfig sampler_config;
    if (sigma >= 0.0) sampler_config.sigma = sigma;
    sampler_config.seed = 11 + position;
    return std::make_unique<pf::guessing::StaticSampler>(model, encoder,
                                                         sampler_config);
  }
  auto sampler_config = pf::guessing::table1_parameters(guesses);
  sampler_config.smoothing.enabled = (spec == "dynamic+gs");
  sampler_config.seed = 13 + position;
  return std::make_unique<pf::guessing::DynamicSampler>(model, encoder,
                                                        sampler_config);
}
}  // namespace

int main(int argc, char** argv) {
  pf::util::Flags flags(argc, argv);
  const auto guesses =
      static_cast<std::size_t>(flags.get_int("guesses", 100000));
  const auto epochs = static_cast<std::size_t>(flags.get_int("epochs", 10));
  const auto train_size =
      static_cast<std::size_t>(flags.get_int("train-size", 10000));
  const std::string strategy = flags.get_string("strategy", "dynamic+gs");
  const auto pipeline_depth =
      static_cast<std::size_t>(flags.get_int("pipeline", 4));
  const bool sketch_unique = flags.get_bool("sketch-unique", false);
  const std::string state_path = flags.get_string("state", "");
  const std::string scenarios_flag = flags.get_string("scenarios", "");
  const std::string deadline_flag = flags.get_string("deadline", "");
  const std::string rate_cap_flag = flags.get_string("rate-cap", "");
  const std::string fleet_state_path = flags.get_string("fleet-state", "");
  const double checkpoint_every =
      static_cast<double>(flags.get_int("checkpoint-every", 30));
  const std::string index_path = flags.get_string("index", "");
  const std::string build_index_path = flags.get_string("build-index", "");
  const int coordinator_port = flags.get_int("coordinator", -1);
  const std::string worker_flag = flags.get_string("worker", "");
  const auto shard_splits =
      static_cast<std::size_t>(flags.get_int("shard-splits", 1));
  const int serve_port = flags.get_int("serve", -1);
  const auto serve_batch =
      static_cast<std::size_t>(flags.get_int("serve-batch", 64));
  pf::util::set_log_level(pf::util::LogLevel::kInfo);

  if (coordinator_port >= 0 && !worker_flag.empty()) {
    std::fprintf(stderr,
                 "--coordinator and --worker are different processes; pick "
                 "one per invocation\n");
    return 1;
  }

  // Leak simulation: the attacker holds a subsample of one breach and
  // attacks the (disjoint, deduplicated) remainder — §IV-D's protocol.
  pf::data::CorpusConfig corpus_config;
  pf::data::SyntheticRockyou generator(corpus_config, 20220614);
  const auto corpus = generator.generate(std::max<std::size_t>(
      120000, train_size * 8));
  pf::util::Rng rng(1);
  const auto split =
      pf::data::make_rockyou_style_split(corpus, train_size, rng);
  std::printf("attacker knows %zu passwords; target set: %zu unique unseen\n",
              split.train.size(), split.test_unique.size());

  pf::guessing::SessionConfig session_config;
  session_config.budget = guesses;
  session_config.log_progress = true;
  session_config.chunk_size = 4096;
  session_config.pipeline_depth = pipeline_depth;
  session_config.unique_tracking = sketch_unique
                                       ? pf::guessing::UniqueTracking::kSketch
                                       : pf::guessing::UniqueTracking::kExact;

  // ---- distributed coordinator: serve scenarios to worker processes ----
  // No training here — the coordinator never builds a generator; it ships
  // spec strings and merges results. Workers (launched with the same
  // flags plus --worker) do the training.
  if (coordinator_port >= 0) {
    const auto specs = split_csv(scenarios_flag);
    if (specs.empty()) {
      std::fprintf(stderr, "--coordinator needs --scenarios\n");
      return 1;
    }
    for (const auto& spec : specs) {
      double sigma = -1.0;
      std::string spec_error;
      if (!validate_scenario_spec(spec, &sigma, &spec_error)) {
        std::fprintf(stderr, "%s\n", spec_error.c_str());
        return 1;
      }
    }
    std::string matcher_spec = "testset";
    std::size_t shard_count = 0;
    try {
      if (!build_index_path.empty()) {
        const auto stats = pf::guessing::IndexBuilder::build(
            split.test_unique, build_index_path);
        std::printf("built disk index %s: %zu keys, %.1f MB in %s\n",
                    build_index_path.c_str(), stats.keys_distinct,
                    static_cast<double>(stats.file_bytes) / (1024.0 * 1024.0),
                    pf::util::format_duration(stats.seconds).c_str());
        matcher_spec = "index:" + build_index_path;
      } else if (!index_path.empty()) {
        matcher_spec = "index:" + index_path;
      }
      if (matcher_spec.rfind("index:", 0) == 0) {
        // Open once to learn (and sanity-check) the shard space workers
        // will split; also catches a missing/corrupt index before any
        // worker dials in.
        shard_count =
            pf::guessing::MappedMatcher(matcher_spec.substr(6)).shard_count();
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }
    if (shard_splits > 1 && matcher_spec == "testset") {
      std::fprintf(stderr,
                   "--shard-splits needs a disk index (--index or "
                   "--build-index); the in-memory matcher has no shard "
                   "space to split\n");
      return 1;
    }

    pf::dist::CoordinatorConfig coordinator_config;
    coordinator_config.port = static_cast<std::uint16_t>(coordinator_port);
    pf::dist::Coordinator coordinator(coordinator_config);
    for (const auto& spec : specs) {
      pf::dist::DistScenario scenario;
      scenario.name = spec;
      scenario.generator_spec = spec;
      scenario.matcher_spec = matcher_spec;
      scenario.session = session_config;
      scenario.session.log_progress = false;
      scenario.shard_splits = shard_splits;
      scenario.shard_count = shard_count;
      coordinator.add_scenario(std::move(scenario));
    }
    std::printf(
        "coordinator on 127.0.0.1:%u: %zu scenario(s), %zu split(s) each; "
        "start workers with this command's flags plus --worker "
        "127.0.0.1:%u\n",
        coordinator.port(), specs.size(), std::max<std::size_t>(shard_splits, 1),
        coordinator.port());
    pf::util::Timer fleet_timer;
    coordinator.run();

    const auto stats = coordinator.stats();
    std::printf("\n=== distributed fleet summary (%zu scenarios, %.1fs) ===\n",
                coordinator.scenario_count(), fleet_timer.elapsed_seconds());
    for (std::size_t id = 0; id < coordinator.scenario_count(); ++id) {
      const auto& outcome = coordinator.outcome(id);
      const auto& cp = outcome.result.final();
      std::printf("  %-14s %9zu guesses: %6zu matched (%.3f%%), %zu unique\n",
                  outcome.name.c_str(), cp.guesses, cp.matched,
                  cp.matched_percent, cp.unique);
      if (outcome.parts > 1 || outcome.reassignments > 0) {
        std::printf("  %-14s   dist: %zu part(s), %zu reassignment(s)\n", "",
                    outcome.parts, outcome.reassignments);
      }
    }
    std::printf(
        "fleet total: %zu guesses, %zu matches; %zu worker(s) served, "
        "%zu lost\n",
        stats.produced, stats.matched, stats.workers_registered,
        stats.workers_lost);
    if (stats.unique_union_valid) {
      std::printf("fleet-wide distinct guesses (merged sketch): ~%zu\n",
                  stats.unique_union);
    }
    return 0;
  }

  pf::data::Encoder encoder(pf::data::Alphabet::standard(), 10);
  pf::flow::FlowConfig config;
  config.num_couplings = 8;
  config.hidden = 96;
  pf::util::Rng model_rng(2);
  pf::flow::FlowModel model(config, model_rng);
  pf::flow::TrainConfig train_config;
  train_config.epochs = epochs;
  pf::flow::Trainer trainer(model, train_config);
  pf::util::Timer timer;
  trainer.train(split.train, encoder);
  std::printf("trained in %s\n",
              pf::util::format_duration(timer.elapsed_seconds()).c_str());

  // ---- distributed worker: serve assignments from a coordinator --------
  if (!worker_flag.empty()) {
    std::string host;
    std::uint16_t port = 0;
    const std::size_t colon = worker_flag.rfind(':');
    try {
      if (colon == std::string::npos || colon == 0) {
        throw std::invalid_argument("missing ':'");
      }
      host = worker_flag.substr(0, colon);
      const int parsed = std::stoi(worker_flag.substr(colon + 1));
      if (parsed <= 0 || parsed > 65535) throw std::out_of_range("port");
      port = static_cast<std::uint16_t>(parsed);
    } catch (const std::exception&) {
      std::fprintf(stderr,
                   "--worker wants HOST:PORT (e.g. 127.0.0.1:7000), got "
                   "'%s'\n",
                   worker_flag.c_str());
      return 1;
    }

    // The "testset" matcher spec resolves to the held-out split this
    // process just derived — deterministic from the shared flags, so every
    // worker (and the in-process run) probes the identical target set.
    const auto testset_matcher =
        std::make_shared<pf::guessing::HashSetMatcher>(split.test_unique);
    pf::dist::WorkerConfig worker_config;
    worker_config.host = host;
    worker_config.port = port;
    worker_config.label = "train_and_attack";
    worker_config.pool = &pf::util::shared_pool();
    pf::dist::Worker worker(
        worker_config,
        [&](const pf::dist::AssignedScenario& assigned) {
          pf::dist::WorkerBinding binding;
          binding.generator =
              make_sampler(assigned.generator_spec, assigned.scenario_id,
                           model, encoder, guesses);
          if (assigned.matcher_spec == "testset") {
            if (assigned.shard_end != 0) {
              throw std::runtime_error(
                  "testset matcher has no shard ranges to split");
            }
            binding.matcher = testset_matcher;
          } else if (assigned.matcher_spec.rfind("index:", 0) == 0) {
            const std::string path = assigned.matcher_spec.substr(6);
            binding.matcher =
                assigned.shard_end != 0
                    ? std::make_shared<pf::guessing::MappedMatcher>(
                          path, static_cast<std::size_t>(assigned.shard_begin),
                          static_cast<std::size_t>(assigned.shard_end))
                    : std::make_shared<pf::guessing::MappedMatcher>(path);
          } else {
            throw std::runtime_error("unknown matcher spec '" +
                                     assigned.matcher_spec + "'");
          }
          return binding;
        });
    std::printf("worker serving %s:%u\n", host.c_str(), port);
    try {
      worker.run();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }
    const auto& worker_stats = worker.stats();
    std::printf(
        "worker done: %zu assignment(s), %zu result(s), %zu checkpoint(s) "
        "shipped, %zu reconnect(s)\n",
        worker_stats.assignments, worker_stats.results_sent,
        worker_stats.checkpoints_sent, worker_stats.reconnects);
    return 0;
  }

  // The membership oracle the attack probes: in-memory by default, or an
  // mmap-paged disk index when --index/--build-index asks for one.
  std::shared_ptr<const pf::guessing::Matcher> matcher;
  if (!index_path.empty() || !build_index_path.empty()) {
    try {
      std::string path = index_path;
      if (!build_index_path.empty()) {
        const auto stats = pf::guessing::IndexBuilder::build(
            split.test_unique, build_index_path);
        std::printf("built disk index %s: %zu keys, %.1f MB in %s\n",
                    build_index_path.c_str(), stats.keys_distinct,
                    static_cast<double>(stats.file_bytes) / (1024.0 * 1024.0),
                    pf::util::format_duration(stats.seconds).c_str());
        path = build_index_path;
      }
      auto mapped = std::make_shared<pf::guessing::MappedMatcher>(path);
      std::printf("probing disk index %s: %zu targets in %zu shards\n",
                  path.c_str(), mapped->test_set_size(),
                  mapped->shard_count());
      matcher = std::move(mapped);
    } catch (const std::exception& e) {
      // Missing/corrupt/foreign index files are an operator error, not a
      // crash: report like every other bad flag.
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }
  } else {
    matcher = std::make_shared<pf::guessing::HashSetMatcher>(
        split.test_unique);
  }

  // ---- serve mode: online credential-screening service -----------------
  // Same trained model, same matcher the attack would probe — but instead
  // of generating guesses, answer strength queries over the dist transport
  // until a stop signal arrives.
  if (serve_port >= 0) {
    pf::serve::StrengthServerConfig serve_config;
    serve_config.port = static_cast<std::uint16_t>(serve_port);
    serve_config.max_batch = serve_batch;
    serve_config.pool = &pf::util::shared_pool();
    try {
      pf::serve::StrengthServer server(serve_config, model, encoder, matcher);
      std::signal(SIGINT, handle_stop_signal);
      std::signal(SIGTERM, handle_stop_signal);
      std::printf(
          "credential-screening service on 127.0.0.1:%u (max_batch=%zu, "
          "%zu index keys); Ctrl-C to stop\n",
          server.port(), serve_batch, matcher->test_set_size());
      while (!g_stop_requested) server.poll_once(200);
      const auto& serve_stats = server.stats();
      std::printf(
          "\nservice stopped: %zu client(s) (%zu dropped), %zu queries "
          "(%zu refused overloaded), %zu candidates scored in %zu "
          "batch(es), %zu replies\n",
          serve_stats.clients_accepted, serve_stats.clients_dropped,
          serve_stats.queries, serve_stats.overloaded,
          serve_stats.candidates_scored, serve_stats.batches,
          serve_stats.replies_sent);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }
    return 0;
  }

  // ---- fleet mode: a concurrent sweep over one shared matcher ----------
  if (!scenarios_flag.empty()) {
    std::vector<std::unique_ptr<pf::guessing::GuessGenerator>> samplers;
    std::vector<std::string> labels;
    for (const auto& spec : split_csv(scenarios_flag)) {
      try {
        samplers.push_back(
            make_sampler(spec, samplers.size(), model, encoder, guesses));
      } catch (const std::exception& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
      }
      labels.push_back(spec);
    }

    // Positional QoS lists: one value per scenario, or a single value
    // broadcast to all of them. 0 disables the knob for that scenario.
    const auto parse_per_scenario = [&](const std::string& list,
                                        const char* flag_name,
                                        std::vector<double>& out) {
      out.assign(samplers.size(), 0.0);
      if (list.empty()) return true;
      std::vector<double> values;
      std::stringstream stream(list);
      std::string item;
      while (std::getline(stream, item, ',')) {
        try {
          values.push_back(std::stod(item));
        } catch (const std::exception&) {
          std::fprintf(stderr, "bad value '%s' in --%s\n", item.c_str(),
                       flag_name);
          return false;
        }
      }
      if (values.size() == 1) {
        out.assign(samplers.size(), values[0]);
      } else if (values.size() == samplers.size()) {
        out = values;
      } else {
        std::fprintf(stderr,
                     "--%s needs 1 value or one per scenario (%zu), got %zu\n",
                     flag_name, samplers.size(), values.size());
        return false;
      }
      return true;
    };
    std::vector<double> deadlines, rate_caps;
    if (!parse_per_scenario(deadline_flag, "deadline", deadlines) ||
        !parse_per_scenario(rate_cap_flag, "rate-cap", rate_caps)) {
      return 1;
    }

    pf::guessing::SchedulerConfig fleet;
    fleet.pool = &pf::util::shared_pool();
    pf::guessing::AttackScheduler scheduler(fleet);

    // Crash-safe mode: thaw the newest intact checkpoint generation if one
    // exists; otherwise register the fleet fresh. The resolver re-binds
    // each saved scenario to its sampler by position and insists the
    // labels agree, so a resume with edited --scenarios fails loudly
    // instead of thawing a stream into the wrong strategy.
    std::unique_ptr<pf::util::CheckpointStore> store;
    bool resumed = false;
    if (!fleet_state_path.empty()) {
      store = std::make_unique<pf::util::CheckpointStore>(fleet_state_path);
      try {
        resumed = store->load([&](std::istream& in) {
          scheduler.load_state(
              in,
              [&](const pf::guessing::AttackScheduler::ScenarioThawInfo& info)
                  -> pf::guessing::AttackScheduler::ScenarioBinding {
                if (info.index >= samplers.size() ||
                    labels[info.index] != info.name) {
                  throw std::runtime_error(
                      "saved fleet scenario #" + std::to_string(info.index) +
                      " is '" + info.name +
                      "', which does not match --scenarios; resume with the "
                      "flags the fleet was started with");
                }
                return {*samplers[info.index], matcher};
              });
        });
      } catch (const std::exception& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
      }
    }

    std::vector<std::size_t> ids;
    if (resumed) {
      for (const auto& snap : scheduler.scenarios()) ids.push_back(snap.id);
      std::printf("resumed fleet from %s at %zu guesses\n",
                  fleet_state_path.c_str(), scheduler.aggregate().produced);
    } else {
      for (std::size_t i = 0; i < samplers.size(); ++i) {
        pf::guessing::ScenarioOptions options;
        options.name = labels[i];
        options.session = session_config;
        options.session.log_progress = false;  // one summary table instead
        options.deadline_seconds = deadlines[i];
        options.rate_cap = rate_caps[i];
        ids.push_back(scheduler.add_scenario(*samplers[i], matcher, options));
      }
    }
    std::printf("running %zu scenarios concurrently over %zu targets\n",
                ids.size(), matcher->test_set_size());
    pf::util::Timer fleet_timer;

    if (store) {
      std::signal(SIGINT, handle_stop_signal);
      std::signal(SIGTERM, handle_stop_signal);

      // Drivers run in the background; this thread autosaves on a clock
      // and watches for a stop signal. save_state quiesces in-flight
      // slices through the aggregate() gate, so every generation on disk
      // is a chunk-boundary-consistent snapshot of the live fleet.
      std::atomic<bool> done{false};
      std::thread driver([&] {
        scheduler.run();
        done.store(true);
      });
      pf::util::Timer autosave_timer;
      while (!done.load() && !g_stop_requested) {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        if (!done.load() && !g_stop_requested &&
            autosave_timer.elapsed_seconds() >= checkpoint_every) {
          store->save(
              [&](std::ostream& out) { scheduler.save_state(out); });
          autosave_timer.reset();
        }
      }
      if (g_stop_requested && !done.load()) {
        // Drain-and-save: freeze a final consistent snapshot, then pause
        // every scenario so run() lets its drivers go.
        store->save([&](std::ostream& out) { scheduler.save_state(out); });
        for (const auto& snap : scheduler.scenarios()) {
          scheduler.pause_scenario(snap.id);
        }
        driver.join();
        std::printf(
            "\ninterrupted: fleet state saved to %s (%zu guesses in); "
            "restart with the same flags to resume\n",
            fleet_state_path.c_str(), scheduler.aggregate().produced);
        return 0;
      }
      driver.join();
      store->clear();  // finished cleanly: nothing left to resume
    } else {
      scheduler.run();
    }

    std::printf("\n=== fleet summary (%zu scenarios, %.1fs) ===\n",
                ids.size(), fleet_timer.elapsed_seconds());
    for (const auto& snap : scheduler.scenarios()) {
      const auto scenario_result = scheduler.result(snap.id);
      const auto& cp = scenario_result.final();
      std::printf("  %-14s %9zu guesses: %6zu matched (%.3f%%), %zu unique\n",
                  snap.name.c_str(), cp.guesses, cp.matched,
                  cp.matched_percent, cp.unique);
      if (snap.deadline_seconds > 0.0 || snap.rate_cap > 0.0) {
        std::printf("  %-14s   qos:", "");
        if (snap.deadline_seconds > 0.0) {
          std::printf(" deadline %.3gs %s", snap.deadline_seconds,
                      snap.past_deadline ? "MISSED" : "met");
        }
        if (snap.rate_cap > 0.0) {
          std::printf(" cap %.0f g/s (achieved %.0f)", snap.rate_cap,
                      snap.achieved_guesses_per_second);
        }
        std::printf("\n");
      }
    }
    const auto aggregate = scheduler.aggregate();
    std::printf("fleet total: %zu guesses, %zu matches, %.0f guesses/s\n",
                aggregate.produced, aggregate.matched,
                aggregate.guesses_per_second);
    if (aggregate.deadline_missed > 0) {
      std::printf("deadlines missed: %zu\n", aggregate.deadline_missed);
    }
    if (aggregate.unique_union_valid) {
      std::printf("fleet-wide distinct guesses (merged sketch): ~%zu\n",
                  aggregate.unique_union);
    }
    return 0;
  }

  // Drive the session in ~10 slices so progress (and, with --state, a
  // restart point) lands between them rather than only at the end.
  const auto attack = [&](pf::guessing::GuessGenerator& sampler) {
    pf::guessing::AttackSession session(sampler, matcher, session_config);
    if (!state_path.empty()) {
      std::ifstream saved(state_path, std::ios::binary);
      if (saved.good()) {
        session.load_state(saved);
        std::printf("resumed from %s at %zu guesses\n", state_path.c_str(),
                    session.stats().produced);
      }
    }
    const std::size_t slice = std::max<std::size_t>(guesses / 10, 1);
    while (!session.finished()) {
      const auto& stats = session.run_until(session.stats().produced + slice);
      std::printf("  ... %zu guesses, %zu matched, %.0f guesses/s\n",
                  stats.produced, stats.matched, stats.guesses_per_second);
      if (!state_path.empty() &&
          sampler.supports_state_serialization() && !session.finished()) {
        std::ofstream out(state_path, std::ios::binary | std::ios::trunc);
        session.save_state(out);
      }
    }
    if (!state_path.empty()) std::remove(state_path.c_str());
    return session.result();
  };

  pf::guessing::RunResult result;
  if (strategy == "static") {
    pf::guessing::StaticSampler sampler(model, encoder);
    result = attack(sampler);
  } else {
    auto sampler_config = pf::guessing::table1_parameters(guesses);
    sampler_config.smoothing.enabled = (strategy == "dynamic+gs");
    if (strategy != "dynamic" && strategy != "dynamic+gs") {
      std::fprintf(stderr, "unknown --strategy %s\n", strategy.c_str());
      return 1;
    }
    pf::guessing::DynamicSampler sampler(model, encoder, sampler_config);
    result = attack(sampler);
  }

  std::printf("\n=== attack summary (%s) ===\n", strategy.c_str());
  for (const auto& cp : result.checkpoints) {
    std::printf("  %9zu guesses: %6zu matched (%.3f%%), %zu unique\n",
                cp.guesses, cp.matched, cp.matched_percent, cp.unique);
  }
  std::printf("cracked examples: ");
  for (std::size_t i = 0; i < std::min<std::size_t>(
                              8, result.matched_passwords.size()); ++i) {
    std::printf("%s ", result.matched_passwords[i].c_str());
  }
  std::printf("\ntotal time %s\n",
              pf::util::format_duration(result.seconds).c_str());
  return 0;
}
