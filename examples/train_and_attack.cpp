// Full attack pipeline: train PassFlow on a leaked subset and run the
// Dynamic Sampling + Gaussian Smoothing attack against a held-out target set
// — the paper's headline experiment as a single CLI, driven through the
// streaming AttackSession engine.
//
//   ./examples/train_and_attack [--guesses 100000] [--epochs 10]
//                               [--train-size 10000] [--strategy dynamic+gs]
//                               [--pipeline 4] [--sketch-unique false]
//                               [--state attack.state]
//                               [--scenarios static@0.8,static@1.0,dynamic+gs]
//                               [--deadline 30] [--rate-cap 0,50000,0]
//                               [--fleet-state fleet.ckpt]
//                               [--checkpoint-every 30]
//                               [--build-index targets.pfidx]
//                               [--index targets.pfidx]
//
// Strategies: static | dynamic | dynamic+gs (Table II rows). --pipeline N
// keeps N chunks in flight (feedback-free strategies only; dynamic runs
// serially by construction). --sketch-unique bounds unique-tracking memory
// with the HLL sketch. --state freezes the session after every progress
// report and resumes from the file if it exists, so a long attack survives
// a restart (static strategy only — re-run with the same flags).
//
// --scenarios runs a comma-separated sweep of strategies concurrently as
// one fleet through AttackScheduler: every scenario gets its own sampler
// but they all share one matcher and one worker-pool budget. static@SIGMA
// sets the static sampler's prior stddev, so "static@0.6,static@1.0,
// static@1.4" reproduces a sigma ablation in a single run. Ignores
// --strategy/--state. --deadline and --rate-cap attach per-scenario QoS in
// fleet mode: each takes a comma-separated list matched positionally to
// --scenarios (a single value broadcasts to every scenario; 0 = none).
// Deadlines are soft wall-clock seconds — a scenario past its deadline is
// scheduled with boosted effective weight; rate caps are guesses/second
// enforced by per-scenario token buckets.
//
// --fleet-state makes the fleet crash-safe: the whole scheduler (every
// scenario's stream, the fair-share clocks, QoS ledgers) is frozen to a
// rotated, CRC-framed CheckpointStore at <path>.gNNNNNNNN every
// --checkpoint-every seconds, and SIGINT/SIGTERM drains in-flight slices
// and saves once more before exiting. Restarting with the same flags thaws
// the newest intact generation and resumes where the fleet left off
// (saved QoS ledgers win over the --deadline/--rate-cap flags on resume).
// The checkpoints are deleted when the fleet finishes cleanly.
//
// --build-index writes the target set to a disk index at the given path
// and attacks through the mmap-backed MappedMatcher instead of the
// in-memory hash set; --index attacks through an existing index file
// (e.g. one built offline from a multi-GB leak with IndexBuilder), so the
// target corpus never has to fit in RAM. Metrics are identical either way.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "data/synthetic_rockyou.hpp"
#include "flow/trainer.hpp"
#include "guessing/dynamic_sampler.hpp"
#include "guessing/mapped_matcher.hpp"
#include "guessing/scheduler.hpp"
#include "guessing/session.hpp"
#include "guessing/static_sampler.hpp"
#include "util/checkpoint.hpp"
#include "util/flags.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace pf = passflow;

namespace {
// SIGINT/SIGTERM request a drain-and-save instead of killing the fleet;
// sig_atomic_t is the only state a signal handler may touch.
volatile std::sig_atomic_t g_stop_requested = 0;
extern "C" void handle_stop_signal(int) { g_stop_requested = 1; }
}  // namespace

int main(int argc, char** argv) {
  pf::util::Flags flags(argc, argv);
  const auto guesses =
      static_cast<std::size_t>(flags.get_int("guesses", 100000));
  const auto epochs = static_cast<std::size_t>(flags.get_int("epochs", 10));
  const auto train_size =
      static_cast<std::size_t>(flags.get_int("train-size", 10000));
  const std::string strategy = flags.get_string("strategy", "dynamic+gs");
  const auto pipeline_depth =
      static_cast<std::size_t>(flags.get_int("pipeline", 4));
  const bool sketch_unique = flags.get_bool("sketch-unique", false);
  const std::string state_path = flags.get_string("state", "");
  const std::string scenarios_flag = flags.get_string("scenarios", "");
  const std::string deadline_flag = flags.get_string("deadline", "");
  const std::string rate_cap_flag = flags.get_string("rate-cap", "");
  const std::string fleet_state_path = flags.get_string("fleet-state", "");
  const double checkpoint_every =
      static_cast<double>(flags.get_int("checkpoint-every", 30));
  const std::string index_path = flags.get_string("index", "");
  const std::string build_index_path = flags.get_string("build-index", "");
  pf::util::set_log_level(pf::util::LogLevel::kInfo);

  // Leak simulation: the attacker holds a subsample of one breach and
  // attacks the (disjoint, deduplicated) remainder — §IV-D's protocol.
  pf::data::CorpusConfig corpus_config;
  pf::data::SyntheticRockyou generator(corpus_config, 20220614);
  const auto corpus = generator.generate(std::max<std::size_t>(
      120000, train_size * 8));
  pf::util::Rng rng(1);
  const auto split =
      pf::data::make_rockyou_style_split(corpus, train_size, rng);
  std::printf("attacker knows %zu passwords; target set: %zu unique unseen\n",
              split.train.size(), split.test_unique.size());

  pf::data::Encoder encoder(pf::data::Alphabet::standard(), 10);
  pf::flow::FlowConfig config;
  config.num_couplings = 8;
  config.hidden = 96;
  pf::util::Rng model_rng(2);
  pf::flow::FlowModel model(config, model_rng);
  pf::flow::TrainConfig train_config;
  train_config.epochs = epochs;
  pf::flow::Trainer trainer(model, train_config);
  pf::util::Timer timer;
  trainer.train(split.train, encoder);
  std::printf("trained in %s\n",
              pf::util::format_duration(timer.elapsed_seconds()).c_str());

  // The membership oracle the attack probes: in-memory by default, or an
  // mmap-paged disk index when --index/--build-index asks for one.
  std::shared_ptr<const pf::guessing::Matcher> matcher;
  if (!index_path.empty() || !build_index_path.empty()) {
    try {
      std::string path = index_path;
      if (!build_index_path.empty()) {
        const auto stats = pf::guessing::IndexBuilder::build(
            split.test_unique, build_index_path);
        std::printf("built disk index %s: %zu keys, %.1f MB in %s\n",
                    build_index_path.c_str(), stats.keys_distinct,
                    static_cast<double>(stats.file_bytes) / (1024.0 * 1024.0),
                    pf::util::format_duration(stats.seconds).c_str());
        path = build_index_path;
      }
      auto mapped = std::make_shared<pf::guessing::MappedMatcher>(path);
      std::printf("probing disk index %s: %zu targets in %zu shards\n",
                  path.c_str(), mapped->test_set_size(),
                  mapped->shard_count());
      matcher = std::move(mapped);
    } catch (const std::exception& e) {
      // Missing/corrupt/foreign index files are an operator error, not a
      // crash: report like every other bad flag.
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }
  } else {
    matcher = std::make_shared<pf::guessing::HashSetMatcher>(
        split.test_unique);
  }
  pf::guessing::SessionConfig session_config;
  session_config.budget = guesses;
  session_config.log_progress = true;
  session_config.chunk_size = 4096;
  session_config.pipeline_depth = pipeline_depth;
  session_config.unique_tracking = sketch_unique
                                       ? pf::guessing::UniqueTracking::kSketch
                                       : pf::guessing::UniqueTracking::kExact;

  // ---- fleet mode: a concurrent sweep over one shared matcher ----------
  if (!scenarios_flag.empty()) {
    std::vector<std::unique_ptr<pf::guessing::GuessGenerator>> samplers;
    std::vector<std::string> labels;
    std::stringstream specs(scenarios_flag);
    std::string spec;
    while (std::getline(specs, spec, ',')) {
      if (spec.empty()) continue;
      if (spec.rfind("static", 0) == 0) {
        pf::guessing::StaticSamplerConfig sampler_config;
        const std::size_t at = spec.find('@');
        if (at != std::string::npos) {
          try {
            sampler_config.sigma = std::stod(spec.substr(at + 1));
          } catch (const std::exception&) {
            std::fprintf(stderr, "bad sigma in scenario spec '%s'\n",
                         spec.c_str());
            return 1;
          }
        }
        // Distinct seeds so identical-sigma scenarios still explore
        // different latent draws.
        sampler_config.seed = 11 + samplers.size();
        samplers.push_back(std::make_unique<pf::guessing::StaticSampler>(
            model, encoder, sampler_config));
      } else if (spec == "dynamic" || spec == "dynamic+gs") {
        auto sampler_config = pf::guessing::table1_parameters(guesses);
        sampler_config.smoothing.enabled = (spec == "dynamic+gs");
        sampler_config.seed = 13 + samplers.size();
        samplers.push_back(std::make_unique<pf::guessing::DynamicSampler>(
            model, encoder, sampler_config));
      } else {
        std::fprintf(stderr, "unknown scenario spec '%s'\n", spec.c_str());
        return 1;
      }
      labels.push_back(spec);
    }

    // Positional QoS lists: one value per scenario, or a single value
    // broadcast to all of them. 0 disables the knob for that scenario.
    const auto parse_per_scenario = [&](const std::string& list,
                                        const char* flag_name,
                                        std::vector<double>& out) {
      out.assign(samplers.size(), 0.0);
      if (list.empty()) return true;
      std::vector<double> values;
      std::stringstream stream(list);
      std::string item;
      while (std::getline(stream, item, ',')) {
        try {
          values.push_back(std::stod(item));
        } catch (const std::exception&) {
          std::fprintf(stderr, "bad value '%s' in --%s\n", item.c_str(),
                       flag_name);
          return false;
        }
      }
      if (values.size() == 1) {
        out.assign(samplers.size(), values[0]);
      } else if (values.size() == samplers.size()) {
        out = values;
      } else {
        std::fprintf(stderr,
                     "--%s needs 1 value or one per scenario (%zu), got %zu\n",
                     flag_name, samplers.size(), values.size());
        return false;
      }
      return true;
    };
    std::vector<double> deadlines, rate_caps;
    if (!parse_per_scenario(deadline_flag, "deadline", deadlines) ||
        !parse_per_scenario(rate_cap_flag, "rate-cap", rate_caps)) {
      return 1;
    }

    pf::guessing::SchedulerConfig fleet;
    fleet.pool = &pf::util::shared_pool();
    pf::guessing::AttackScheduler scheduler(fleet);

    // Crash-safe mode: thaw the newest intact checkpoint generation if one
    // exists; otherwise register the fleet fresh. The resolver re-binds
    // each saved scenario to its sampler by position and insists the
    // labels agree, so a resume with edited --scenarios fails loudly
    // instead of thawing a stream into the wrong strategy.
    std::unique_ptr<pf::util::CheckpointStore> store;
    bool resumed = false;
    if (!fleet_state_path.empty()) {
      store = std::make_unique<pf::util::CheckpointStore>(fleet_state_path);
      try {
        resumed = store->load([&](std::istream& in) {
          scheduler.load_state(
              in,
              [&](const pf::guessing::AttackScheduler::ScenarioThawInfo& info)
                  -> pf::guessing::AttackScheduler::ScenarioBinding {
                if (info.index >= samplers.size() ||
                    labels[info.index] != info.name) {
                  throw std::runtime_error(
                      "saved fleet scenario #" + std::to_string(info.index) +
                      " is '" + info.name +
                      "', which does not match --scenarios; resume with the "
                      "flags the fleet was started with");
                }
                return {*samplers[info.index], matcher};
              });
        });
      } catch (const std::exception& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
      }
    }

    std::vector<std::size_t> ids;
    if (resumed) {
      for (const auto& snap : scheduler.scenarios()) ids.push_back(snap.id);
      std::printf("resumed fleet from %s at %zu guesses\n",
                  fleet_state_path.c_str(), scheduler.aggregate().produced);
    } else {
      for (std::size_t i = 0; i < samplers.size(); ++i) {
        pf::guessing::ScenarioOptions options;
        options.name = labels[i];
        options.session = session_config;
        options.session.log_progress = false;  // one summary table instead
        options.deadline_seconds = deadlines[i];
        options.rate_cap = rate_caps[i];
        ids.push_back(scheduler.add_scenario(*samplers[i], matcher, options));
      }
    }
    std::printf("running %zu scenarios concurrently over %zu targets\n",
                ids.size(), matcher->test_set_size());
    pf::util::Timer fleet_timer;

    if (store) {
      std::signal(SIGINT, handle_stop_signal);
      std::signal(SIGTERM, handle_stop_signal);

      // Drivers run in the background; this thread autosaves on a clock
      // and watches for a stop signal. save_state quiesces in-flight
      // slices through the aggregate() gate, so every generation on disk
      // is a chunk-boundary-consistent snapshot of the live fleet.
      std::atomic<bool> done{false};
      std::thread driver([&] {
        scheduler.run();
        done.store(true);
      });
      pf::util::Timer autosave_timer;
      while (!done.load() && !g_stop_requested) {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        if (!done.load() && !g_stop_requested &&
            autosave_timer.elapsed_seconds() >= checkpoint_every) {
          store->save(
              [&](std::ostream& out) { scheduler.save_state(out); });
          autosave_timer.reset();
        }
      }
      if (g_stop_requested && !done.load()) {
        // Drain-and-save: freeze a final consistent snapshot, then pause
        // every scenario so run() lets its drivers go.
        store->save([&](std::ostream& out) { scheduler.save_state(out); });
        for (const auto& snap : scheduler.scenarios()) {
          scheduler.pause_scenario(snap.id);
        }
        driver.join();
        std::printf(
            "\ninterrupted: fleet state saved to %s (%zu guesses in); "
            "restart with the same flags to resume\n",
            fleet_state_path.c_str(), scheduler.aggregate().produced);
        return 0;
      }
      driver.join();
      store->clear();  // finished cleanly: nothing left to resume
    } else {
      scheduler.run();
    }

    std::printf("\n=== fleet summary (%zu scenarios, %.1fs) ===\n",
                ids.size(), fleet_timer.elapsed_seconds());
    for (const auto& snap : scheduler.scenarios()) {
      const auto scenario_result = scheduler.result(snap.id);
      const auto& cp = scenario_result.final();
      std::printf("  %-14s %9zu guesses: %6zu matched (%.3f%%), %zu unique\n",
                  snap.name.c_str(), cp.guesses, cp.matched,
                  cp.matched_percent, cp.unique);
      if (snap.deadline_seconds > 0.0 || snap.rate_cap > 0.0) {
        std::printf("  %-14s   qos:", "");
        if (snap.deadline_seconds > 0.0) {
          std::printf(" deadline %.3gs %s", snap.deadline_seconds,
                      snap.past_deadline ? "MISSED" : "met");
        }
        if (snap.rate_cap > 0.0) {
          std::printf(" cap %.0f g/s (achieved %.0f)", snap.rate_cap,
                      snap.achieved_guesses_per_second);
        }
        std::printf("\n");
      }
    }
    const auto aggregate = scheduler.aggregate();
    std::printf("fleet total: %zu guesses, %zu matches, %.0f guesses/s\n",
                aggregate.produced, aggregate.matched,
                aggregate.guesses_per_second);
    if (aggregate.deadline_missed > 0) {
      std::printf("deadlines missed: %zu\n", aggregate.deadline_missed);
    }
    if (aggregate.unique_union_valid) {
      std::printf("fleet-wide distinct guesses (merged sketch): ~%zu\n",
                  aggregate.unique_union);
    }
    return 0;
  }

  // Drive the session in ~10 slices so progress (and, with --state, a
  // restart point) lands between them rather than only at the end.
  const auto attack = [&](pf::guessing::GuessGenerator& sampler) {
    pf::guessing::AttackSession session(sampler, matcher, session_config);
    if (!state_path.empty()) {
      std::ifstream saved(state_path, std::ios::binary);
      if (saved.good()) {
        session.load_state(saved);
        std::printf("resumed from %s at %zu guesses\n", state_path.c_str(),
                    session.stats().produced);
      }
    }
    const std::size_t slice = std::max<std::size_t>(guesses / 10, 1);
    while (!session.finished()) {
      const auto& stats = session.run_until(session.stats().produced + slice);
      std::printf("  ... %zu guesses, %zu matched, %.0f guesses/s\n",
                  stats.produced, stats.matched, stats.guesses_per_second);
      if (!state_path.empty() &&
          sampler.supports_state_serialization() && !session.finished()) {
        std::ofstream out(state_path, std::ios::binary | std::ios::trunc);
        session.save_state(out);
      }
    }
    if (!state_path.empty()) std::remove(state_path.c_str());
    return session.result();
  };

  pf::guessing::RunResult result;
  if (strategy == "static") {
    pf::guessing::StaticSampler sampler(model, encoder);
    result = attack(sampler);
  } else {
    auto sampler_config = pf::guessing::table1_parameters(guesses);
    sampler_config.smoothing.enabled = (strategy == "dynamic+gs");
    if (strategy != "dynamic" && strategy != "dynamic+gs") {
      std::fprintf(stderr, "unknown --strategy %s\n", strategy.c_str());
      return 1;
    }
    pf::guessing::DynamicSampler sampler(model, encoder, sampler_config);
    result = attack(sampler);
  }

  std::printf("\n=== attack summary (%s) ===\n", strategy.c_str());
  for (const auto& cp : result.checkpoints) {
    std::printf("  %9zu guesses: %6zu matched (%.3f%%), %zu unique\n",
                cp.guesses, cp.matched, cp.matched_percent, cp.unique);
  }
  std::printf("cracked examples: ");
  for (std::size_t i = 0; i < std::min<std::size_t>(
                              8, result.matched_passwords.size()); ++i) {
    std::printf("%s ", result.matched_passwords[i].c_str());
  }
  std::printf("\ntotal time %s\n",
              pf::util::format_duration(result.seconds).c_str());
  return 0;
}
